// Run-report aggregation: merges N depsurf.run_report.v1 documents (or
// previously merged aggregates) into one depsurf.run_report_agg.v1 — the
// corpus-scale view the paper's whole-table evaluations need, where each
// image contributes one per-run report.
//
// Schema (depsurf.run_report_agg.v1):
//   {
//     "schema": "depsurf.run_report_agg.v1",
//     "reports": N,                       // total v1 documents folded in
//     "sources": [ {"label": "...", "spans": n, "counters": n}, ... ],
//     "spans": [ ... ],                   // all roots, deterministically sorted
//     "counters": {...},                  // summed
//     "gauges": {...},                    // last write wins (input order)
//     "histograms": {"name": {"count": N, "sum": N,
//         "buckets": [[lower_bound, count], ...]}, ...}  // bucket-wise added
//   }
//
// The merge is commutative and associative up to masking: counters,
// histograms, and the sorted span forest are order-independent; gauges are
// last-write (order-dependent only when inputs disagree on a value, which
// for deterministic non-timing gauges they do not); timing fields differ
// run to run but are zeroed by masked canonicalization. Merging an
// aggregate folds in its sources, so merge(merge(A,B),C) == merge(A,B,C).
#ifndef DEPSURF_SRC_OBS_REPORT_MERGE_H_
#define DEPSURF_SRC_OBS_REPORT_MERGE_H_

#include <string>
#include <vector>

#include "src/util/error.h"

namespace depsurf {
namespace obs {

struct LabeledReport {
  std::string label;  // provenance shown in "sources" (file path, image label)
  std::string json;   // a run_report.v1 or run_report_agg.v1 document
};

// Merges the given documents into a run_report_agg.v1 document.
Result<std::string> MergeRunReports(const std::vector<LabeledReport>& reports);

// Validates a depsurf.run_report_agg.v1 document: schema marker, a
// "reports" count, the "sources" provenance array, and the four merged
// sections.
Status ValidateAggReport(std::string_view json);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_REPORT_MERGE_H_
