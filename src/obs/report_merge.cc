#include "src/obs/report_merge.h"

#include <algorithm>
#include <map>

#include "src/obs/json_lint.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

std::string U64(double v) { return StrFormat("%llu", (unsigned long long)(v + 0.5)); }
std::string I64(double v) {
  return StrFormat("%lld", (long long)(v < 0 ? v - 0.5 : v + 0.5));
}

struct HistogramAcc {
  double count = 0;
  double sum = 0;
  std::map<uint64_t, double> buckets;  // lower bound -> count
};

// Re-emits a parsed span subtree in run-report span form, normalizing to
// the known members (name, dur_ns, cpu_ns, alloc_count, alloc_bytes,
// attrs, children). Resource fields default to 0 for reports written
// before they existed.
void AppendSpanValue(std::string& out, const JsonValue& span) {
  const JsonValue* name = span.Find("name");
  const JsonValue* dur = span.Find("dur_ns");
  const JsonValue* cpu = span.Find("cpu_ns");
  const JsonValue* alloc_count = span.Find("alloc_count");
  const JsonValue* alloc_bytes = span.Find("alloc_bytes");
  out += "{\"name\": \"" + JsonEscape(name != nullptr ? name->string : "") + "\"";
  out += ", \"dur_ns\": " + U64(dur != nullptr ? dur->number : 0);
  out += ", \"cpu_ns\": " + U64(cpu != nullptr ? cpu->number : 0);
  out += ", \"alloc_count\": " + U64(alloc_count != nullptr ? alloc_count->number : 0);
  out += ", \"alloc_bytes\": " + U64(alloc_bytes != nullptr ? alloc_bytes->number : 0);
  out += ", \"attrs\": {";
  const JsonValue* attrs = span.Find("attrs");
  if (attrs != nullptr && attrs->kind == JsonValue::Kind::kObject) {
    for (size_t i = 0; i < attrs->object.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += "\"" + JsonEscape(attrs->object[i].first) + "\": \"" +
             JsonEscape(attrs->object[i].second.string) + "\"";
    }
  }
  out += "}, \"children\": [";
  const JsonValue* children = span.Find("children");
  if (children != nullptr && children->kind == JsonValue::Kind::kArray) {
    for (size_t i = 0; i < children->array.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      AppendSpanValue(out, children->array[i]);
    }
  }
  out += "]}";
}

// Pre-serializes a parsed diagnostics entry with its source label first, so
// sorting the strings sorts by (label, severity, subsystem, ...).
std::string LabeledDiagEntry(const std::string& label, const JsonValue& entry) {
  const JsonValue* severity = entry.Find("severity");
  const JsonValue* subsystem = entry.Find("subsystem");
  const JsonValue* code = entry.Find("code");
  const JsonValue* offset = entry.Find("offset");
  const JsonValue* message = entry.Find("message");
  return StrFormat(
      "{\"label\": \"%s\", \"severity\": \"%s\", \"subsystem\": \"%s\", "
      "\"code\": \"%s\", \"offset\": %s, \"message\": \"%s\"}",
      JsonEscape(label).c_str(),
      JsonEscape(severity != nullptr ? severity->string : "").c_str(),
      JsonEscape(subsystem != nullptr ? subsystem->string : "").c_str(),
      JsonEscape(code != nullptr ? code->string : "").c_str(),
      I64(offset != nullptr ? offset->number : -1).c_str(),
      JsonEscape(message != nullptr ? message->string : "").c_str());
}

}  // namespace

Result<std::string> MergeRunReports(const std::vector<LabeledReport>& reports) {
  if (reports.empty()) {
    return Error(ErrorCode::kInvalidArgument, "nothing to merge");
  }
  uint64_t total_reports = 0;
  std::vector<std::string> sources;       // pre-serialized provenance entries
  std::vector<std::string> diagnostics;   // pre-serialized labeled entries
  std::vector<JsonValue> spans;           // all root spans across inputs
  std::map<std::string, double> counters; // summed
  std::map<std::string, double> gauges;   // last write wins
  std::map<std::string, HistogramAcc> histograms;

  for (const LabeledReport& report : reports) {
    auto parsed = ParseJson(report.json);
    if (!parsed.ok()) {
      return Error(parsed.error().code(), report.label + ": " + parsed.error().message());
    }
    const JsonValue& doc = *parsed;
    const JsonValue* schema = doc.Find("schema");
    bool is_agg = schema != nullptr && schema->string == kRunReportAggSchema;
    if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
        (schema->string != kRunReportSchema && !is_agg)) {
      return Error(ErrorCode::kMalformedData,
                   report.label + ": not a run report or aggregate");
    }

    const JsonValue* doc_diags = doc.Find("diagnostics");
    size_t doc_diag_count =
        doc_diags != nullptr && doc_diags->kind == JsonValue::Kind::kArray
            ? doc_diags->array.size()
            : 0;
    if (is_agg) {
      const JsonValue* nested = doc.Find("reports");
      total_reports += nested != nullptr ? static_cast<uint64_t>(nested->number) : 0;
      const JsonValue* nested_sources = doc.Find("sources");
      if (nested_sources != nullptr && nested_sources->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& source : nested_sources->array) {
          const JsonValue* label = source.Find("label");
          const JsonValue* source_spans = source.Find("spans");
          const JsonValue* source_counters = source.Find("counters");
          const JsonValue* source_diags = source.Find("diags");
          sources.push_back(StrFormat(
              "{\"label\": \"%s\", \"spans\": %s, \"counters\": %s, \"diags\": %s}",
              JsonEscape(label != nullptr ? label->string : "").c_str(),
              U64(source_spans != nullptr ? source_spans->number : 0).c_str(),
              U64(source_counters != nullptr ? source_counters->number : 0).c_str(),
              U64(source_diags != nullptr ? source_diags->number : 0).c_str()));
        }
      }
      if (doc_diags != nullptr && doc_diags->kind == JsonValue::Kind::kArray) {
        // Aggregate entries already carry their source label.
        for (const JsonValue& entry : doc_diags->array) {
          const JsonValue* label = entry.Find("label");
          diagnostics.push_back(
              LabeledDiagEntry(label != nullptr ? label->string : "", entry));
        }
      }
    } else {
      total_reports += 1;
      const JsonValue* doc_counters = doc.Find("counters");
      sources.push_back(StrFormat(
          "{\"label\": \"%s\", \"spans\": %zu, \"counters\": %zu, \"diags\": %zu}",
          JsonEscape(report.label).c_str(), CountReportSpanNodes(doc),
          doc_counters != nullptr ? doc_counters->object.size() : size_t{0},
          doc_diag_count));
      if (doc_diags != nullptr && doc_diags->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& entry : doc_diags->array) {
          diagnostics.push_back(LabeledDiagEntry(report.label, entry));
        }
      }
    }

    const JsonValue* doc_spans = doc.Find("spans");
    if (doc_spans != nullptr && doc_spans->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& span : doc_spans->array) {
        spans.push_back(span);
      }
    }
    const JsonValue* doc_counters = doc.Find("counters");
    if (doc_counters != nullptr) {
      for (const auto& [name, value] : doc_counters->object) {
        counters[name] += value.number;
      }
    }
    const JsonValue* doc_gauges = doc.Find("gauges");
    if (doc_gauges != nullptr) {
      for (const auto& [name, value] : doc_gauges->object) {
        gauges[name] = value.number;
      }
    }
    const JsonValue* doc_histograms = doc.Find("histograms");
    if (doc_histograms != nullptr) {
      for (const auto& [name, histogram] : doc_histograms->object) {
        HistogramAcc& acc = histograms[name];
        const JsonValue* count = histogram.Find("count");
        const JsonValue* sum = histogram.Find("sum");
        acc.count += count != nullptr ? count->number : 0;
        acc.sum += sum != nullptr ? sum->number : 0;
        const JsonValue* buckets = histogram.Find("buckets");
        if (buckets != nullptr && buckets->kind == JsonValue::Kind::kArray) {
          for (const JsonValue& bucket : buckets->array) {
            if (bucket.array.size() == 2) {
              acc.buckets[static_cast<uint64_t>(bucket.array[0].number)] +=
                  bucket.array[1].number;
            }
          }
        }
      }
    }
  }

  std::sort(spans.begin(), spans.end(), [](const JsonValue& a, const JsonValue& b) {
    return CompareReportSpans(a, b) < 0;
  });
  // Provenance entries are serialized with the label first, so sorting the
  // strings sorts by label — merge output is independent of input order.
  std::sort(sources.begin(), sources.end());
  std::sort(diagnostics.begin(), diagnostics.end());

  std::string out = "{\n\"schema\": \"";
  out += kRunReportAggSchema;
  out += "\",\n";
  out += StrFormat("\"reports\": %llu,\n", (unsigned long long)total_reports);
  out += "\"sources\": [";
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += sources[i];
  }
  out += "],\n\"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    AppendSpanValue(out, spans[i]);
  }
  out += "],\n\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + U64(value);
  }
  out += "},\n\"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + I64(value);
  }
  out += "},\n\"histograms\": {";
  first = true;
  for (const auto& [name, acc] : histograms) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + JsonEscape(name) + "\": {\"count\": " + U64(acc.count);
    out += ", \"sum\": " + U64(acc.sum);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [lower, count] : acc.buckets) {
      if (count <= 0) {
        continue;
      }
      if (!first_bucket) {
        out += ", ";
      }
      first_bucket = false;
      out += "[" + StrFormat("%llu", (unsigned long long)lower) + ", " + U64(count) + "]";
    }
    out += "]}";
  }
  out += "},\n\"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += diagnostics[i];
  }
  out += "]\n}\n";
  return out;
}

Status ValidateAggReport(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kRunReportAggSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kRunReportAggSchema));
  }
  const JsonValue* reports = doc.Find("reports");
  if (reports == nullptr || reports->kind != JsonValue::Kind::kNumber ||
      reports->number < 1) {
    return Status(ErrorCode::kMalformedData, "missing or empty \"reports\" count");
  }
  const JsonValue* sources = doc.Find("sources");
  if (sources == nullptr || sources->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"sources\" array");
  }
  for (const char* section : {"spans", "counters", "gauges", "histograms", "diagnostics"}) {
    if (doc.Find(section) == nullptr) {
      return Status(ErrorCode::kMalformedData, StrFormat("missing section %s", section));
    }
  }
  return ValidateDiagnosticsArray(*doc.Find("diagnostics"), /*labeled=*/true);
}

}  // namespace obs
}  // namespace depsurf
