// Process-wide metrics for the analysis pipeline: named counters, gauges,
// and latency/size histograms with fixed log2 buckets. Everything is
// thread-safe: registration takes a mutex, updates are lock-free atomics,
// so decoders running on Study::BuildDataset worker threads can tally
// concurrently with the main thread.
//
// Naming convention: "<subsystem>.<what>" ("btf.types_decoded"). Names
// ending in one of the timing suffixes (_ns, _us, _ms, _seconds) are
// considered nondeterministic timing fields and are zeroed by the masked
// run-report serialization (see run_report.h).
#ifndef DEPSURF_SRC_OBS_METRICS_H_
#define DEPSURF_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace depsurf {
namespace obs {

// A histogram with one bucket per power of two: bucket 0 counts value 0,
// bucket i (i >= 1) counts values v with 2^(i-1) <= v < 2^i. 64-bit values
// always land in a bucket.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  // Bucket index a value lands in (0 for value 0, else floor(log2(v)) + 1).
  static size_t BucketIndex(uint64_t value);
  // Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t bucket);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  // log2 bucket holding rank q*count: bucket 0 is exactly 0; bucket i >= 1
  // interpolates across [2^(i-1), 2^i), so Percentile(1.0) lands on the
  // bucket's exclusive upper bound. Returns 0 for an empty histogram.
  double Percentile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

// Registry of named metrics. Counter()/Gauge()/GetHistogram() return stable
// pointers that remain valid (and keep their identity across Reset) for the
// registry's lifetime, so hot paths can cache them in function-local
// statics.
class MetricsRegistry {
 public:
  // The process-wide registry used by the pipeline instrumentation. Never
  // destroyed (intentional leak: avoids static-destruction-order races with
  // worker threads draining at exit).
  static MetricsRegistry& Global();

  std::atomic<uint64_t>* Counter(std::string_view name);
  std::atomic<int64_t>* Gauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Convenience forms for cold paths.
  void Incr(std::string_view name, uint64_t delta = 1);
  void Set(std::string_view name, int64_t value);
  void Record(std::string_view name, uint64_t value);

  // Zeroes every value; registered names (and cached pointers) survive.
  void Reset();

  // Deterministically ordered snapshots (names sorted lexicographically).
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, int64_t>> GaugeSnapshot() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<int64_t>>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// True when `name` denotes a timing value (suffix _ns/_us/_ms/_seconds);
// such fields are zeroed by masked serialization.
bool IsTimingMetricName(std::string_view name);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_METRICS_H_
