// BenchReporter: the shared helper every bench_* binary uses to emit a
// machine-readable BENCH_<name>.json next to its human tables, seeding the
// repo's perf trajectory (stage wall times + throughput, tracked PR over
// PR).
//
// Schema (depsurf.bench_report.v1):
//   {
//     "schema": "depsurf.bench_report.v1",
//     "bench": "table1",
//     "notes": {"scale": "1.00", ...},
//     "stages": [ {"name": "extract_lts", "seconds": 1.23,
//                  "items": 5, "items_per_sec": 4.07,
//                  "bytes": 0, "bytes_per_sec": 0.0}, ... ]
//   }
//
// The file lands in $DEPSURF_BENCH_DIR when set, else the working
// directory. The report auto-writes on destruction if WriteJson() was not
// called explicitly, so early returns still leave a trajectory point.
#ifndef DEPSURF_SRC_OBS_BENCH_REPORT_H_
#define DEPSURF_SRC_OBS_BENCH_REPORT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace depsurf {
namespace obs {

inline constexpr char kBenchReportSchema[] = "depsurf.bench_report.v1";

struct BenchStage {
  std::string name;
  double seconds = 0;
  uint64_t items = 0;  // stage-defined unit: images, diffs, programs, ...
  uint64_t bytes = 0;
};

class BenchReporter;

// RAII stage timer: records wall time from construction to destruction and
// appends the stage to its reporter.
class StageTimer {
 public:
  StageTimer(BenchReporter* reporter, std::string name);
  ~StageTimer();
  StageTimer(StageTimer&& other) noexcept;
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  StageTimer& operator=(StageTimer&&) = delete;

  void set_items(uint64_t items) { items_ = items; }
  void set_bytes(uint64_t bytes) { bytes_ = bytes; }
  void add_items(uint64_t n = 1) { items_ += n; }
  void add_bytes(uint64_t n) { bytes_ += n; }

 private:
  BenchReporter* reporter_;
  std::string name_;
  uint64_t items_ = 0;
  uint64_t bytes_ = 0;
  std::chrono::steady_clock::time_point start_;
};

class BenchReporter {
 public:
  // `name` is the bench identity: "table1" writes BENCH_table1.json.
  explicit BenchReporter(std::string name);
  ~BenchReporter();

  void AddNote(const std::string& key, const std::string& value);
  void AddStage(BenchStage stage);
  StageTimer Stage(std::string name) { return StageTimer(this, std::move(name)); }

  // Emits the JSON file; prints a diag warning on failure (benches should
  // not turn an unwritable report into a failed table regeneration).
  Status WriteJson();

  std::string path() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<BenchStage> stages_;
  bool written_ = false;
};

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_BENCH_REPORT_H_
