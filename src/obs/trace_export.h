// Timeline trace export: serializes a finished span forest to the Chrome
// trace_event JSON format (the "JSON object format" with a "traceEvents"
// array of "X" complete-duration events), directly loadable in
// ui.perfetto.dev or chrome://tracing.
//
// Every SpanNode becomes exactly one "X" event — complete-event count ==
// span-node count, an invariant `depsurf metrics lint --kind=trace`
// enforces against the run report of the same run. The array additionally
// leads with one "M" (metadata) thread_name event per distinct tid, naming
// the lane "worker-<tid>" so viewers group executor tracks by worker lane.
// Timestamps are rebased so the earliest span starts at ts=0 and "X"
// events are emitted in nondecreasing ts order; `tid` is the small
// per-thread trace id spans record at open, so the worker threads of a
// parallel Study::BuildDataset show up as separate timeline tracks.
#ifndef DEPSURF_SRC_OBS_TRACE_EXPORT_H_
#define DEPSURF_SRC_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/json_lint.h"
#include "src/obs/span.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

// Total nodes in a span forest (roots plus all descendants).
size_t CountSpanNodes(const std::vector<SpanNode>& roots);

// Chrome trace_event JSON for the given forest. Timestamps ("ts") and
// durations ("dur") are microseconds with nanosecond precision; span
// attributes become the event's "args".
std::string TraceEventJson(const std::vector<SpanNode>& roots);

// Serializes the global SpanCollector to `path` (what --trace-out does).
Status WriteGlobalTrace(const std::string& path);

// Validates a parsed trace document: a "traceEvents" array whose members
// are "X" events (name, nonnegative numeric ts/dur/pid/tid, nondecreasing
// ts across the array) or "M" metadata events (pid/tid plus args.name).
// When `expect_events` is nonnegative the "X" event count must match it
// exactly (cross-check against CountReportSpanNodes of the run report
// from the same run); metadata events are not counted.
Status ValidateTrace(const JsonValue& trace, int64_t expect_events = -1);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_TRACE_EXPORT_H_
