#include "src/obs/trace_export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>

#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

struct FlatEvent {
  const SpanNode* span;
  uint64_t start_ns;
};

void Flatten(const SpanNode& span, uint64_t parent_start_ns, std::vector<FlatEvent>& out,
             uint64_t& min_start_ns) {
  // Children recorded before start_ns existed (or clock quirks) inherit the
  // parent's start so the timeline stays well-formed.
  uint64_t start = span.start_ns != 0 ? span.start_ns : parent_start_ns;
  min_start_ns = std::min(min_start_ns, start);
  out.push_back(FlatEvent{&span, start});
  for (const SpanNode& child : span.children) {
    Flatten(child, start, out, min_start_ns);
  }
}

std::string Us(uint64_t ns) {
  // Microseconds with nanosecond precision; trailing precision is exact
  // because the value is ns/1000 with a 3-digit fraction.
  return StrFormat("%llu.%03llu", (unsigned long long)(ns / 1000),
                   (unsigned long long)(ns % 1000));
}

void CollectTids(const SpanNode& span, std::set<uint32_t>& tids) {
  tids.insert(span.tid);
  for (const SpanNode& child : span.children) {
    CollectTids(child, tids);
  }
}

}  // namespace

size_t CountSpanNodes(const std::vector<SpanNode>& roots) {
  size_t n = 0;
  for (const SpanNode& root : roots) {
    n += 1;
    n += CountSpanNodes(root.children);
  }
  return n;
}

std::string TraceEventJson(const std::vector<SpanNode>& roots) {
  std::vector<FlatEvent> events;
  uint64_t min_start_ns = std::numeric_limits<uint64_t>::max();
  for (const SpanNode& root : roots) {
    Flatten(root, root.start_ns, events, min_start_ns);
  }
  if (events.empty()) {
    min_start_ns = 0;
  }
  std::stable_sort(events.begin(), events.end(), [](const FlatEvent& a, const FlatEvent& b) {
    if (a.start_ns != b.start_ns) {
      return a.start_ns < b.start_ns;
    }
    // Same instant: parents before children (longer spans first) keeps the
    // nesting readable in viewers.
    return a.span->dur_ns > b.span->dur_ns;
  });

  // Thread-name metadata first: Perfetto/chrome://tracing group events
  // into named lanes, so the bounded-window workers of a parallel corpus
  // build read as "worker-2", "worker-3", ... instead of bare tids.
  std::set<uint32_t> tids;
  for (const SpanNode& root : roots) {
    CollectTids(root, tids);
  }
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (uint32_t tid : tids) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrFormat(
        "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %u"
        ", \"args\": {\"name\": \"worker-%u\"}}",
        tid, tid);
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanNode& span = *events[i].span;
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  {\"name\": \"" + JsonEscape(span.name) + "\", \"ph\": \"X\"";
    out += ", \"ts\": " + Us(events[i].start_ns - min_start_ns);
    out += ", \"dur\": " + Us(span.dur_ns);
    out += ", \"pid\": 1, \"tid\": " + StrFormat("%u", span.tid);
    out += ", \"args\": {";
    for (size_t a = 0; a < span.attrs.size(); ++a) {
      if (a != 0) {
        out += ", ";
      }
      out += "\"" + JsonEscape(span.attrs[a].first) + "\": \"" +
             JsonEscape(span.attrs[a].second) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteGlobalTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot write " + path);
  }
  std::string json = TraceEventJson(SpanCollector::Global().Snapshot());
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) {
    return Status(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::Ok();
}

Status ValidateTrace(const JsonValue& trace, int64_t expect_events) {
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing traceEvents array");
  }
  double prev_ts = -1;
  int64_t complete_events = 0;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    const JsonValue* name = event.Find("name");
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* pid = event.Find("pid");
    const JsonValue* tid = event.Find("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData, StrFormat("event %zu: missing name", i));
    }
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        (ph->string != "X" && ph->string != "M")) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("event %zu: phase must be \"X\" or \"M\"", i));
    }
    if (ph->string == "M") {
      // Metadata (thread_name) events carry no timeline position, only an
      // identity: pid/tid plus an args.name naming the lane.
      const std::pair<const char*, const JsonValue*> metadata_fields[] = {{"pid", pid},
                                                                          {"tid", tid}};
      for (const auto& [field, member] : metadata_fields) {
        if (member == nullptr || member->kind != JsonValue::Kind::kNumber ||
            !std::isfinite(member->number) || member->number < 0) {
          return Status(ErrorCode::kMalformedData,
                        StrFormat("event %zu: %s must be a nonnegative number", i, field));
        }
      }
      const JsonValue* args = event.Find("args");
      if (args == nullptr || args->Find("name") == nullptr) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("event %zu: metadata event without args.name", i));
      }
      continue;
    }
    ++complete_events;
    const std::pair<const char*, const JsonValue*> numeric_fields[] = {
        {"ts", ts}, {"dur", dur}, {"pid", pid}, {"tid", tid}};
    for (const auto& [field, member] : numeric_fields) {
      if (member == nullptr || member->kind != JsonValue::Kind::kNumber ||
          !std::isfinite(member->number) || member->number < 0) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("event %zu: %s must be a nonnegative number", i, field));
      }
    }
    if (ts->number < prev_ts) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("event %zu: ts not monotonic (%.3f after %.3f)", i, ts->number,
                              prev_ts));
    }
    prev_ts = ts->number;
  }
  if (expect_events >= 0 && complete_events != expect_events) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("trace has %lld complete events, span tree has %lld nodes",
                            (long long)complete_events, (long long)expect_events));
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
