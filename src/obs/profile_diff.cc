#include "src/obs/profile_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "src/obs/json_lint.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

std::string U64(uint64_t v) { return StrFormat("%llu", (unsigned long long)v); }
std::string I64(int64_t v) { return StrFormat("%lld", (long long)v); }

int64_t Delta(uint64_t head, uint64_t base) {
  return static_cast<int64_t>(head) - static_cast<int64_t>(base);
}

uint64_t MemberU64(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kNumber && value->number > 0
             ? static_cast<uint64_t>(value->number)
             : 0;
}

void AppendColumns(std::string& out, const ProfileNameRow& row) {
  out += "{\"count\": " + U64(row.count);
  out += ", \"dur_ns\": " + U64(row.dur_ns);
  out += ", \"self_ns\": " + U64(row.self_ns);
  out += ", \"cpu_ns\": " + U64(row.cpu_ns);
  out += ", \"alloc_count\": " + U64(row.alloc_count);
  out += ", \"alloc_bytes\": " + U64(row.alloc_bytes);
  out += "}";
}

void AppendSide(std::string& out, const char* key, uint64_t wall_ns,
                uint64_t serial_self_ns, double serial_share_pct,
                const std::vector<CriticalPathStep>& steps) {
  out += std::string("\"") + key + "\": {\"wall_ns\": " + U64(wall_ns);
  out += ", \"serial_self_ns\": " + U64(serial_self_ns);
  out += StrFormat(", \"serial_share_pct\": %.2f", serial_share_pct);
  out += ", \"steps\": [";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += "{\"name\": \"" + JsonEscape(steps[i].name) + "\"";
    out += ", \"dur_ns\": " + U64(steps[i].dur_ns);
    out += ", \"self_ns\": " + U64(steps[i].self_ns) + "}";
  }
  out += "]}";
}

std::string PathNames(const std::vector<CriticalPathStep>& steps) {
  std::string out;
  for (const CriticalPathStep& step : steps) {
    if (!out.empty()) {
      out += " > ";
    }
    out += step.name;
  }
  return out;
}

Status ColumnsOk(const JsonValue& object, const std::string& label, bool signed_ok) {
  for (const char* key :
       {"count", "dur_ns", "self_ns", "cpu_ns", "alloc_count", "alloc_bytes"}) {
    const JsonValue* value = object.Find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::kNumber ||
        !std::isfinite(value->number) || (!signed_ok && value->number < 0)) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("%s: missing%s number \"%s\"", label.c_str(),
                              signed_ok ? "" : " or negative", key));
    }
  }
  return Status::Ok();
}

Status PathSideOk(const JsonValue& path, const char* key) {
  const JsonValue* side = path.Find(key);
  if (side == nullptr || side->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("critical_path without a \"%s\" object", key));
  }
  for (const char* member : {"wall_ns", "serial_self_ns", "serial_share_pct"}) {
    const JsonValue* value = side->Find(member);
    if (value == nullptr || value->kind != JsonValue::Kind::kNumber ||
        !std::isfinite(value->number) || value->number < 0) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("critical_path %s: missing or negative \"%s\"", key, member));
    }
  }
  const JsonValue* steps = side->Find("steps");
  if (steps == nullptr || steps->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("critical_path %s: missing \"steps\" array", key));
  }
  for (const JsonValue& step : steps->array) {
    const JsonValue* name = step.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("critical_path %s: step without a name", key));
    }
  }
  return Status::Ok();
}

}  // namespace

ProfileDiff DiffProfiles(const Profile& base, const Profile& head, size_t top_n) {
  ProfileDiff diff;
  diff.base_span_nodes = base.span_nodes;
  diff.head_span_nodes = head.span_nodes;
  // Merge-walk the two sorted name tables into their sorted union.
  size_t bi = 0;
  size_t hi = 0;
  while (bi < base.names.size() || hi < head.names.size()) {
    ProfileDiffRow row;
    int order;
    if (bi >= base.names.size()) {
      order = 1;  // only head rows left
    } else if (hi >= head.names.size()) {
      order = -1;  // only base rows left
    } else {
      order = base.names[bi].name.compare(head.names[hi].name);
    }
    if (order <= 0) {
      row.in_base = true;
      row.base = base.names[bi++];
      row.name = row.base.name;
    }
    if (order >= 0) {
      row.in_head = true;
      row.head = head.names[hi++];
      row.name = row.head.name;
    }
    row.count_delta = Delta(row.head.count, row.base.count);
    row.dur_delta_ns = Delta(row.head.dur_ns, row.base.dur_ns);
    row.self_delta_ns = Delta(row.head.self_ns, row.base.self_ns);
    row.cpu_delta_ns = Delta(row.head.cpu_ns, row.base.cpu_ns);
    row.alloc_count_delta = Delta(row.head.alloc_count, row.base.alloc_count);
    row.alloc_bytes_delta = Delta(row.head.alloc_bytes, row.base.alloc_bytes);
    diff.names.push_back(std::move(row));
  }
  for (size_t i = 0; i < diff.names.size(); ++i) {
    if (diff.names[i].self_delta_ns != 0) {
      diff.top_movers.push_back(i);
    }
  }
  std::sort(diff.top_movers.begin(), diff.top_movers.end(), [&](size_t a, size_t b) {
    int64_t ma = std::llabs(diff.names[a].self_delta_ns);
    int64_t mb = std::llabs(diff.names[b].self_delta_ns);
    return ma != mb ? ma > mb : diff.names[a].name < diff.names[b].name;
  });
  if (diff.top_movers.size() > top_n) {
    diff.top_movers.resize(top_n);
  }
  diff.base_wall_ns = base.wall_ns;
  diff.head_wall_ns = head.wall_ns;
  diff.base_serial_self_ns = base.serial_self_ns;
  diff.head_serial_self_ns = head.serial_self_ns;
  diff.base_serial_share_pct = SerialSharePct(base);
  diff.head_serial_share_pct = SerialSharePct(head);
  diff.base_path = base.critical_path;
  diff.head_path = head.critical_path;
  return diff;
}

Result<Profile> ParseProfileDoc(std::string_view json) {
  // Lean on the schema validator first so extraction below can assume
  // well-formed members.
  if (Status valid = ValidateProfileDoc(json); !valid.ok()) {
    return valid.TakeError();
  }
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  Profile profile;
  profile.span_nodes = MemberU64(doc, "span_nodes");
  const JsonValue* names = doc.Find("names");
  if (names != nullptr && names->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& entry : names->array) {
      ProfileNameRow row;
      const JsonValue* name = entry.Find("name");
      row.name = name != nullptr ? name->string : "";
      row.count = MemberU64(entry, "count");
      row.dur_ns = MemberU64(entry, "dur_ns");
      row.self_ns = MemberU64(entry, "self_ns");
      row.cpu_ns = MemberU64(entry, "cpu_ns");
      row.alloc_count = MemberU64(entry, "alloc_count");
      row.alloc_bytes = MemberU64(entry, "alloc_bytes");
      profile.names.push_back(std::move(row));
    }
  }
  const JsonValue* path = doc.Find("critical_path");
  if (path != nullptr && path->kind == JsonValue::Kind::kObject) {
    profile.wall_ns = MemberU64(*path, "wall_ns");
    profile.serial_self_ns = MemberU64(*path, "serial_self_ns");
    const JsonValue* steps = path->Find("steps");
    if (steps != nullptr && steps->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& entry : steps->array) {
        CriticalPathStep step;
        const JsonValue* name = entry.Find("name");
        step.name = name != nullptr ? name->string : "";
        step.dur_ns = MemberU64(entry, "dur_ns");
        step.self_ns = MemberU64(entry, "self_ns");
        profile.critical_path.push_back(std::move(step));
      }
    }
  }
  const JsonValue* executor = doc.Find("executor");
  if (executor != nullptr && executor->kind == JsonValue::Kind::kObject) {
    profile.executor.window = static_cast<int64_t>(MemberU64(*executor, "window"));
    profile.executor.wall_ms = static_cast<int64_t>(MemberU64(*executor, "wall_ms"));
    profile.executor.serialize_stall_us = MemberU64(*executor, "serialize_stall_us");
    profile.executor.queue_waits = MemberU64(*executor, "queue_waits");
    const JsonValue* workers = executor->Find("workers");
    if (workers != nullptr && workers->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& worker : workers->array) {
        profile.executor.worker_busy_ms.emplace_back(
            static_cast<int64_t>(MemberU64(worker, "lane")),
            static_cast<int64_t>(MemberU64(worker, "busy_ms")));
      }
    }
    profile.executor.present = profile.executor.window != 0 ||
                               !profile.executor.worker_busy_ms.empty() ||
                               profile.executor.serialize_stall_us != 0 ||
                               profile.executor.queue_waits != 0;
  }
  return profile;
}

std::string ProfileDiffJson(const ProfileDiff& diff) {
  std::string out = "{\n\"schema\": \"";
  out += kProfileDiffSchema;
  out += "\",\n";
  out += "\"base_span_nodes\": " + U64(diff.base_span_nodes);
  out += ", \"head_span_nodes\": " + U64(diff.head_span_nodes) + ",\n";
  out += "\"names\": [";
  auto append_row = [&](const ProfileDiffRow& row) {
    out += "\n  {\"name\": \"" + JsonEscape(row.name) + "\"";
    out += StrFormat(", \"in_base\": %s, \"in_head\": %s", row.in_base ? "true" : "false",
                     row.in_head ? "true" : "false");
    out += ", \"base\": ";
    AppendColumns(out, row.base);
    out += ", \"head\": ";
    AppendColumns(out, row.head);
    out += ", \"delta\": {\"count\": " + I64(row.count_delta);
    out += ", \"dur_ns\": " + I64(row.dur_delta_ns);
    out += ", \"self_ns\": " + I64(row.self_delta_ns);
    out += ", \"cpu_ns\": " + I64(row.cpu_delta_ns);
    out += ", \"alloc_count\": " + I64(row.alloc_count_delta);
    out += ", \"alloc_bytes\": " + I64(row.alloc_bytes_delta);
    out += "}}";
  };
  for (size_t i = 0; i < diff.names.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    append_row(diff.names[i]);
  }
  out += "\n],\n";
  out += "\"top_movers\": [";
  for (size_t i = 0; i < diff.top_movers.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    append_row(diff.names[diff.top_movers[i]]);
  }
  out += "\n],\n";
  out += "\"critical_path\": {\n  ";
  AppendSide(out, "base", diff.base_wall_ns, diff.base_serial_self_ns,
             diff.base_serial_share_pct, diff.base_path);
  out += ",\n  ";
  AppendSide(out, "head", diff.head_wall_ns, diff.head_serial_self_ns,
             diff.head_serial_share_pct, diff.head_path);
  out += ",\n  \"delta\": {\"wall_ns\": " + I64(diff.wall_delta_ns());
  out += ", \"serial_self_ns\": " + I64(diff.serial_self_delta_ns()) + "}\n}\n}\n";
  return out;
}

std::string ProfileDiffText(const ProfileDiff& diff) {
  std::string out = StrFormat("profile diff: %llu -> %llu span nodes, %zu names\n",
                              (unsigned long long)diff.base_span_nodes,
                              (unsigned long long)diff.head_span_nodes, diff.names.size());
  out += StrFormat("  %-40s %12s %12s %12s %12s %10s\n", "top mover", "base_self_ms",
                   "head_self_ms", "delta_ms", "delta_cpu_ms", "d_allocs");
  for (size_t index : diff.top_movers) {
    const ProfileDiffRow& row = diff.names[index];
    out += StrFormat("  %-40s %12.3f %12.3f %+12.3f %+12.3f %+10lld\n", row.name.c_str(),
                     static_cast<double>(row.base.self_ns) / 1e6,
                     static_cast<double>(row.head.self_ns) / 1e6,
                     static_cast<double>(row.self_delta_ns) / 1e6,
                     static_cast<double>(row.cpu_delta_ns) / 1e6,
                     (long long)row.alloc_count_delta);
  }
  if (diff.top_movers.empty()) {
    out += "  (no self-time movement)\n";
  }
  out += StrFormat(
      "critical path: wall %.3f -> %.3f ms (%+.3f), serial self %.3f -> %.3f ms (%+.3f)\n",
      static_cast<double>(diff.base_wall_ns) / 1e6,
      static_cast<double>(diff.head_wall_ns) / 1e6,
      static_cast<double>(diff.wall_delta_ns()) / 1e6,
      static_cast<double>(diff.base_serial_self_ns) / 1e6,
      static_cast<double>(diff.head_serial_self_ns) / 1e6,
      static_cast<double>(diff.serial_self_delta_ns()) / 1e6);
  out += "  base: " + PathNames(diff.base_path) + "\n";
  out += "  head: " + PathNames(diff.head_path) + "\n";
  return out;
}

Status ValidateProfileDiffDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kProfileDiffSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kProfileDiffSchema));
  }
  for (const char* key : {"base_span_nodes", "head_span_nodes"}) {
    const JsonValue* value = doc.Find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::kNumber || value->number < 0) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("missing or negative number \"%s\"", key));
    }
  }
  auto rows_ok = [&](const char* section) -> Status {
    const JsonValue* rows = doc.Find(section);
    if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("missing \"%s\" array", section));
    }
    for (size_t i = 0; i < rows->array.size(); ++i) {
      const JsonValue& row = rows->array[i];
      const JsonValue* name = row.Find("name");
      if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("%s entry %zu: missing name", section, i));
      }
      const JsonValue* in_base = row.Find("in_base");
      const JsonValue* in_head = row.Find("in_head");
      for (const auto& [flag, value] : {std::pair<const char*, const JsonValue*>{
                                            "in_base", in_base},
                                        std::pair<const char*, const JsonValue*>{
                                            "in_head", in_head}}) {
        if (value == nullptr || value->kind != JsonValue::Kind::kBool) {
          return Status(ErrorCode::kMalformedData,
                        StrFormat("%s: missing bool \"%s\"", name->string.c_str(), flag));
        }
      }
      if (!in_base->boolean && !in_head->boolean) {
        return Status(ErrorCode::kMalformedData,
                      name->string + ": row in neither base nor head");
      }
      for (const char* side : {"base", "head"}) {
        const JsonValue* columns = row.Find(side);
        if (columns == nullptr || columns->kind != JsonValue::Kind::kObject) {
          return Status(ErrorCode::kMalformedData,
                        StrFormat("%s: missing \"%s\" object", name->string.c_str(), side));
        }
        if (Status s = ColumnsOk(*columns, name->string + "." + side, false); !s.ok()) {
          return s;
        }
      }
      const JsonValue* delta = row.Find("delta");
      if (delta == nullptr || delta->kind != JsonValue::Kind::kObject) {
        return Status(ErrorCode::kMalformedData,
                      name->string + ": missing \"delta\" object");
      }
      if (Status s = ColumnsOk(*delta, name->string + ".delta", true); !s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  };
  if (Status s = rows_ok("names"); !s.ok()) {
    return s;
  }
  if (Status s = rows_ok("top_movers"); !s.ok()) {
    return s;
  }
  const JsonValue* path = doc.Find("critical_path");
  if (path == nullptr || path->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"critical_path\" object");
  }
  for (const char* side : {"base", "head"}) {
    if (Status s = PathSideOk(*path, side); !s.ok()) {
      return s;
    }
  }
  const JsonValue* delta = path->Find("delta");
  if (delta == nullptr || delta->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "critical_path without a \"delta\" object");
  }
  for (const char* key : {"wall_ns", "serial_self_ns"}) {
    const JsonValue* value = delta->Find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::kNumber ||
        !std::isfinite(value->number)) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("critical_path delta: missing number \"%s\"", key));
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
