// Profile analysis over the span forest: turns resource-attributed spans
// (src/obs/span.h) into a depsurf.profile.v1 document answering "where did
// the build spend its time" — per-name self-time/CPU/alloc aggregates, the
// critical path (longest dependent chain and the share of its wall clock
// attributable to serial self-time), executor lane utilization, and
// folded-stacks text for flamegraph.pl / speedscope.
//
// Schema (depsurf.profile.v1):
//   {
//     "schema": "depsurf.profile.v1",
//     "span_nodes": N,
//     "names": [ {"name": "...", "count": N, "dur_ns": N, "self_ns": N,
//                 "cpu_ns": N, "alloc_count": N, "alloc_bytes": N}, ... ],
//     "critical_path": {"wall_ns": N, "serial_self_ns": N,
//                       "serial_share_pct": X.XX,
//                       "steps": [ {"name": "...", "dur_ns": N,
//                                   "self_ns": N}, ... ]},
//     "executor": {"window": N, "wall_ms": N, "serialize_stall_us": N,
//                  "queue_waits": N,
//                  "workers": [ {"lane": N, "busy_ms": N}, ... ]}
//   }
//
// "names" is sorted by name; self_ns is dur minus the summed durations of
// direct children (clamped at 0), so over a forest of nested same-thread
// spans the self times telescope back to the root durations. Everything
// timing- or allocator-derived (the per-name dur/self/cpu/alloc columns,
// the whole critical_path and executor sections) is masked by
// CanonicalMaskedJson, leaving a structure-only document that is
// byte-identical across --jobs settings.
#ifndef DEPSURF_SRC_OBS_PROFILE_H_
#define DEPSURF_SRC_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

inline constexpr char kProfileSchema[] = "depsurf.profile.v1";

// One row of the per-name aggregate table.
struct ProfileNameRow {
  std::string name;
  uint64_t count = 0;        // span nodes with this name
  uint64_t dur_ns = 0;       // summed inclusive wall time
  uint64_t self_ns = 0;      // summed self time (dur minus children)
  uint64_t cpu_ns = 0;       // summed thread CPU time
  uint64_t alloc_count = 0;  // summed allocation calls (0 without the hooks)
  uint64_t alloc_bytes = 0;
};

struct CriticalPathStep {
  std::string name;
  uint64_t dur_ns = 0;
  uint64_t self_ns = 0;
};

// Executor telemetry lifted from the study.executor.* metrics a bounded-
// window corpus build publishes (see src/study/study.cc).
struct ExecutorStats {
  bool present = false;  // any study.executor.* metric was found
  int64_t window = 0;
  int64_t wall_ms = 0;               // study.build_dataset.wall_ms
  uint64_t serialize_stall_us = 0;   // in-order stage blocked on the window
  uint64_t queue_waits = 0;          // tasks measured by queue_wait_us
  std::vector<std::pair<int64_t, int64_t>> worker_busy_ms;  // (lane, busy ms)
};

struct Profile {
  uint64_t span_nodes = 0;
  std::vector<ProfileNameRow> names;  // sorted by name
  // Critical path: the root with the largest duration (ties broken by
  // lexicographically smallest name), descending into the largest child at
  // every level. wall_ns is that root's duration; serial_self_ns sums the
  // self time along the chain — the fraction of the dominant root's wall
  // no concurrent child work can hide.
  uint64_t wall_ns = 0;
  uint64_t serial_self_ns = 0;
  std::vector<CriticalPathStep> critical_path;
  ExecutorStats executor;
};

// Percentage of wall_ns attributable to the critical path's serial self
// time (0 when wall_ns is 0).
double SerialSharePct(const Profile& profile);

// Walks a span forest into per-name aggregates + critical path. Executor
// stats are left empty; fill them from a registry or a report afterwards.
Profile BuildProfile(const std::vector<SpanNode>& roots);

// Lifts study.executor.* / study.build_dataset.* metrics out of a registry
// into profile.executor (no-op for registries without them).
void FillExecutorStats(Profile& profile, const MetricsRegistry& metrics);

// Parses a run_report.v1 or run_report_agg.v1 document and profiles its
// span forest; executor stats come from the report's gauges, counters, and
// histograms. Spans without cpu/alloc fields (older reports) profile as 0.
Result<Profile> ProfileFromReportJson(std::string_view json);

// Deterministically serializes the profile (see schema above).
std::string ProfileJson(const Profile& profile);

// Human-readable table: per-name rows sorted by self time descending, the
// critical path, and executor lane utilization.
std::string ProfileText(const Profile& profile);

// Folded-stacks flamegraph text: one "root;child;...;leaf self_ns" line
// per distinct stack (self times summed across occurrences), sorted.
// flamegraph.pl and speedscope consume this directly.
std::string FoldedStacks(const std::vector<SpanNode>& roots);
Result<std::string> FoldedStacksFromReportJson(std::string_view json);

// Validates a depsurf.profile.v1 document: schema marker, a well-formed
// names table (string name, nonnegative numeric columns, self <= dur), a
// critical_path section with consistent steps, and an executor section.
Status ValidateProfileDoc(std::string_view json);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_PROFILE_H_
