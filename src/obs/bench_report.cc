#include "src/obs/bench_report.h"

#include <cstdlib>
#include <fstream>

#include "src/obs/diag.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

StageTimer::StageTimer(BenchReporter* reporter, std::string name)
    : reporter_(reporter), name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

StageTimer::StageTimer(StageTimer&& other) noexcept
    : reporter_(other.reporter_),
      name_(std::move(other.name_)),
      items_(other.items_),
      bytes_(other.bytes_),
      start_(other.start_) {
  other.reporter_ = nullptr;
}

StageTimer::~StageTimer() {
  if (reporter_ == nullptr) {
    return;
  }
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                       .count();
  reporter_->AddStage(BenchStage{std::move(name_), seconds, items_, bytes_});
}

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

BenchReporter::~BenchReporter() {
  if (!written_) {
    WriteJson();
  }
}

void BenchReporter::AddNote(const std::string& key, const std::string& value) {
  notes_.emplace_back(key, value);
}

void BenchReporter::AddStage(BenchStage stage) { stages_.push_back(std::move(stage)); }

std::string BenchReporter::path() const {
  const char* dir = getenv("DEPSURF_BENCH_DIR");
  std::string prefix = dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  return prefix + "BENCH_" + name_ + ".json";
}

Status BenchReporter::WriteJson() {
  written_ = true;
  std::string out = "{\n\"schema\": \"";
  out += kBenchReportSchema;
  out += "\",\n\"bench\": \"" + JsonEscape(name_) + "\",\n";
  out += "\"notes\": {";
  for (size_t i = 0; i < notes_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += "\"" + JsonEscape(notes_[i].first) + "\": \"" + JsonEscape(notes_[i].second) + "\"";
  }
  out += "},\n\"stages\": [";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const BenchStage& stage = stages_[i];
    if (i != 0) {
      out += ",";
    }
    out += "\n  ";
    out += StrFormat(
        "{\"name\": \"%s\", \"seconds\": %.6f, \"items\": %llu, "
        "\"items_per_sec\": %.3f, \"bytes\": %llu, \"bytes_per_sec\": %.1f}",
        JsonEscape(stage.name).c_str(), stage.seconds, (unsigned long long)stage.items,
        stage.seconds > 0 ? static_cast<double>(stage.items) / stage.seconds : 0.0,
        (unsigned long long)stage.bytes,
        stage.seconds > 0 ? static_cast<double>(stage.bytes) / stage.seconds : 0.0);
  }
  out += "\n]\n}\n";

  std::string file = path();
  std::ofstream stream(file, std::ios::binary);
  if (!stream) {
    Diag(Severity::kWarning, "cannot write bench report " + file);
    return Status(ErrorCode::kIoError, "cannot write " + file);
  }
  stream.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!stream) {
    Diag(Severity::kWarning, "short write to bench report " + file);
    return Status(ErrorCode::kIoError, "short write to " + file);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
