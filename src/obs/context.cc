#include "src/obs/context.h"

namespace depsurf {
namespace obs {

namespace {

thread_local Context* tls_current_context = nullptr;

}  // namespace

Context::Context()
    : owned_metrics_(std::make_unique<MetricsRegistry>()),
      owned_spans_(std::make_unique<SpanCollector>()),
      owned_diagnostics_(std::make_unique<DiagnosticsCollector>()),
      metrics_(owned_metrics_.get()),
      spans_(owned_spans_.get()),
      diagnostics_(owned_diagnostics_.get()) {
  spans_->SetLiveTrace(Current().spans().live_trace());
}

Context::Context(RootTag)
    : metrics_(&MetricsRegistry::Global()),
      spans_(&SpanCollector::Global()),
      diagnostics_(&DiagnosticsCollector::Global()) {}

Context::~Context() = default;

Context& Context::Root() {
  static Context* root = new Context(RootTag{});
  return *root;
}

Context& Context::Current() {
  return tls_current_context != nullptr ? *tls_current_context : Root();
}

ScopedContext::ScopedContext(Context& context) : previous_(tls_current_context) {
  tls_current_context = &context;
}

ScopedContext::~ScopedContext() { tls_current_context = previous_; }

}  // namespace obs
}  // namespace depsurf
