// Diagnostics helper shared by the CLI and the live span trace: one place
// that formats "depsurf: <severity>: message" lines to stderr, with an
// optional structured Error appended. Replaces the bare Fail()/fprintf
// pattern the CLI started with.
#ifndef DEPSURF_SRC_OBS_DIAG_H_
#define DEPSURF_SRC_OBS_DIAG_H_

#include <string>

#include "src/util/error.h"

namespace depsurf {
namespace obs {

enum class Severity : uint8_t {
  kTrace,    // live span output (only with --trace)
  kInfo,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

// Prints "depsurf: <severity>: <message>[: <error>]" to stderr.
void Diag(Severity severity, const std::string& message);
void Diag(Severity severity, const std::string& message, const Error& error);

// Error-and-exit-code helper for CLI command functions:
//   return DiagError("cannot open " + path);           -> 1
//   return DiagError(result.error());                  -> 1
int DiagError(const std::string& message);
int DiagError(const Error& error);
int DiagError(const std::string& context, const Error& error);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_DIAG_H_
