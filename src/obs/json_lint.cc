#include "src/obs/json_lint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/obs/diagnostics.h"
#include "src/obs/metrics.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    DEPSURF_ASSIGN_OR_RETURN(value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Error Fail(const std::string& what) {
    return Error(ErrorCode::kMalformedData,
                 StrFormat("JSON: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      return ParseString();
    }
    if (c == 't' || c == 'f') {
      return ParseKeyword(c == 't' ? "true" : "false", JsonValue::Kind::kBool, c == 't');
    }
    if (c == 'n') {
      return ParseKeyword("null", JsonValue::Kind::kNull, false);
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseKeyword(std::string_view keyword, JsonValue::Kind kind, bool value) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Fail("bad keyword");
    }
    pos_ += keyword.size();
    JsonValue out;
    out.kind = kind;
    out.boolean = value;
    return out;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    std::string digits(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = strtod(digits.c_str(), &end);
    if (end != digits.c_str() + digits.size()) {
      return Fail("malformed number");
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return out;
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // opening quote
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("truncated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.string += esc;
          break;
        case 'n':
          out.string += '\n';
          break;
        case 't':
          out.string += '\t';
          break;
        case 'r':
          out.string += '\r';
          break;
        case 'b':
          out.string += '\b';
          break;
        case 'f':
          out.string += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Control-plane strings are ASCII; wider code points round-trip
          // as '?' which is fine for validation purposes.
          out.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return out;
    }
    while (true) {
      DEPSURF_ASSIGN_OR_RETURN(element, ParseValue());
      out.array.push_back(std::move(element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return out;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return out;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      DEPSURF_ASSIGN_OR_RETURN(key, ParseString());
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      DEPSURF_ASSIGN_OR_RETURN(value, ParseValue());
      out.object.emplace_back(std::move(key.string), std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return out;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t CountSpanNodesFrom(const JsonValue& span) {
  size_t n = 1;
  const JsonValue* children = span.Find("children");
  if (children != nullptr && children->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& child : children->array) {
      n += CountSpanNodesFrom(child);
    }
  }
  return n;
}

void CollectSpanNamesFrom(const JsonValue& span, std::set<std::string>& out) {
  const JsonValue* name = span.Find("name");
  if (name != nullptr && name->kind == JsonValue::Kind::kString) {
    out.insert(name->string);
  }
  const JsonValue* children = span.Find("children");
  if (children != nullptr && children->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& child : children->array) {
      CollectSpanNamesFrom(child, out);
    }
  }
}

}  // namespace

// Mirror of CompareSpanNodesMasked (span.h) over parsed span objects: name,
// then attrs with timing values ignored, then children recursively. Both
// orderings must agree so a masked-serialized report and a canonicalized
// unmasked report of the same run sort their roots identically.
int CompareReportSpans(const JsonValue& a, const JsonValue& b) {
  const JsonValue* a_name = a.Find("name");
  const JsonValue* b_name = b.Find("name");
  std::string_view an = a_name != nullptr ? std::string_view(a_name->string) : std::string_view();
  std::string_view bn = b_name != nullptr ? std::string_view(b_name->string) : std::string_view();
  if (int c = an.compare(bn); c != 0) {
    return c;
  }
  const JsonValue* a_attrs = a.Find("attrs");
  const JsonValue* b_attrs = b.Find("attrs");
  size_t a_n = a_attrs != nullptr ? a_attrs->object.size() : 0;
  size_t b_n = b_attrs != nullptr ? b_attrs->object.size() : 0;
  for (size_t i = 0; i < std::min(a_n, b_n); ++i) {
    const auto& [ak, av] = a_attrs->object[i];
    const auto& [bk, bv] = b_attrs->object[i];
    if (int c = ak.compare(bk); c != 0) {
      return c;
    }
    if (!IsTimingMetricName(ak)) {
      if (int c = av.string.compare(bv.string); c != 0) {
        return c;
      }
    }
  }
  if (a_n != b_n) {
    return a_n < b_n ? -1 : 1;
  }
  const JsonValue* a_kids = a.Find("children");
  const JsonValue* b_kids = b.Find("children");
  size_t a_k = a_kids != nullptr ? a_kids->array.size() : 0;
  size_t b_k = b_kids != nullptr ? b_kids->array.size() : 0;
  for (size_t i = 0; i < std::min(a_k, b_k); ++i) {
    if (int c = CompareReportSpans(a_kids->array[i], b_kids->array[i]); c != 0) {
      return c;
    }
  }
  if (a_k != b_k) {
    return a_k < b_k ? -1 : 1;
  }
  return 0;
}

namespace {

std::string CanonicalNumber(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", (long long)v);
  }
  return StrFormat("%.17g", v);
}

// Zeroes a value in place of a timing field: numbers become 0, strings "0",
// arrays empty, objects keep their keys with every member zeroed.
void AppendMaskedValue(std::string& out, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      out += "0";
      break;
    case JsonValue::Kind::kString:
      out += "\"0\"";
      break;
    case JsonValue::Kind::kArray:
      out += "[]";
      break;
    case JsonValue::Kind::kObject: {
      out += "{";
      for (size_t i = 0; i < value.object.size(); ++i) {
        if (i != 0) {
          out += ",";
        }
        out += "\"" + JsonEscape(value.object[i].first) + "\":";
        AppendMaskedValue(out, value.object[i].second);
      }
      out += "}";
      break;
    }
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNull:
      out += "null";
      break;
  }
}

void AppendCanonical(std::string& out, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      out += CanonicalNumber(value.number);
      break;
    case JsonValue::Kind::kString:
      out += "\"" + JsonEscape(value.string) + "\"";
      break;
    case JsonValue::Kind::kArray:
      out += "[";
      for (size_t i = 0; i < value.array.size(); ++i) {
        if (i != 0) {
          out += ",";
        }
        AppendCanonical(out, value.array[i]);
      }
      out += "]";
      break;
    case JsonValue::Kind::kObject:
      out += "{";
      for (size_t i = 0; i < value.object.size(); ++i) {
        if (i != 0) {
          out += ",";
        }
        const auto& [key, member] = value.object[i];
        out += "\"" + JsonEscape(key) + "\":";
        // Beyond timing-suffixed keys: span alloc fields depend on the
        // allocator and on whether the hooks were compiled in; a profile's
        // serial-share percentage, critical_path steps, and executor
        // section are all timing-derived (the executor window also varies
        // with --jobs), so they mask wholesale.
        // top_movers (profile_diff.v1) is selected and ordered by timing
        // deltas, so like critical_path it masks wholesale.
        if (key == "dur_ns" || key == "alloc_count" || key == "alloc_bytes" ||
            key == "serial_share_pct" || key == "critical_path" || key == "executor" ||
            key == "top_movers" || IsTimingMetricName(key)) {
          AppendMaskedValue(out, member);
        } else {
          AppendCanonical(out, member);
        }
      }
      out += "}";
      break;
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) { return Parser(text).Parse(); }

std::vector<std::string> RunReportLintNotes(const JsonValue& report) {
  // Gauges renamed across schema revisions: old documents still lint clean,
  // but readers should know which name current builds emit.
  static constexpr struct {
    const char* name;
    const char* replacement;
    const char* why;
  } kDeprecatedGauges[] = {
      {"study.build_dataset.cpu_ms", "study.build_dataset.cpu_total_ms",
       "process CPU is summed across worker threads"},
  };
  std::vector<std::string> notes;
  const JsonValue* gauges = report.Find("gauges");
  if (gauges == nullptr || gauges->kind != JsonValue::Kind::kObject) {
    return notes;
  }
  for (const auto& gauge : kDeprecatedGauges) {
    if (gauges->Find(gauge.name) != nullptr) {
      notes.push_back(StrFormat("deprecated gauge %s: %s; current builds emit %s",
                                gauge.name, gauge.why, gauge.replacement));
    }
  }
  return notes;
}

std::set<std::string> CollectSpanNames(const JsonValue& report) {
  std::set<std::string> names;
  const JsonValue* spans = report.Find("spans");
  if (spans != nullptr && spans->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& span : spans->array) {
      CollectSpanNamesFrom(span, names);
    }
  }
  return names;
}

size_t CountReportSpanNodes(const JsonValue& report) {
  size_t n = 0;
  const JsonValue* spans = report.Find("spans");
  if (spans != nullptr && spans->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& span : spans->array) {
      n += CountSpanNodesFrom(span);
    }
  }
  return n;
}

Status ValidateRunReport(std::string_view json, size_t min_distinct_spans,
                         const std::vector<std::string>& required_counters) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& report = *parsed;
  const JsonValue* schema = report.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kRunReportSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kRunReportSchema));
  }
  for (const char* section : {"spans", "counters", "gauges", "histograms", "diagnostics"}) {
    if (report.Find(section) == nullptr) {
      return Status(ErrorCode::kMalformedData, StrFormat("missing section %s", section));
    }
  }
  DEPSURF_RETURN_IF_ERROR(ValidateDiagnosticsArray(*report.Find("diagnostics")));
  std::set<std::string> names = CollectSpanNames(report);
  if (names.size() < min_distinct_spans) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("only %zu distinct span names, need %zu", names.size(),
                            min_distinct_spans));
  }
  const JsonValue* counters = report.Find("counters");
  for (const std::string& required : required_counters) {
    if (counters->Find(required) == nullptr) {
      return Status(ErrorCode::kMalformedData, "missing counter " + required);
    }
  }
  return Status::Ok();
}

Status ValidateDiagnosticsArray(const JsonValue& array, bool labeled) {
  if (array.kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "diagnostics is not an array");
  }
  for (size_t i = 0; i < array.array.size(); ++i) {
    const JsonValue& entry = array.array[i];
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] is not an object", i));
    }
    const JsonValue* severity = entry.Find("severity");
    if (severity == nullptr || severity->kind != JsonValue::Kind::kString ||
        (severity->string != "warning" && severity->string != "degraded" &&
         severity->string != "fatal")) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] has a bad severity", i));
    }
    const JsonValue* subsystem = entry.Find("subsystem");
    static const char* kSubsystems[] = {"elf", "dwarf", "btf", "tracepoint", "syscall",
                                        "bpf"};
    bool subsystem_ok = subsystem != nullptr &&
                        subsystem->kind == JsonValue::Kind::kString;
    if (subsystem_ok) {
      subsystem_ok = false;
      for (const char* known : kSubsystems) {
        subsystem_ok |= subsystem->string == known;
      }
    }
    if (!subsystem_ok) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] has a bad subsystem", i));
    }
    const JsonValue* code = entry.Find("code");
    if (code == nullptr || code->kind != JsonValue::Kind::kString || code->string.empty()) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] is missing its error code", i));
    }
    const JsonValue* offset = entry.Find("offset");
    if (offset == nullptr || offset->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] is missing its offset", i));
    }
    const JsonValue* message = entry.Find("message");
    if (message == nullptr || message->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("diagnostics[%zu] is missing its message", i));
    }
    if (labeled) {
      const JsonValue* label = entry.Find("label");
      if (label == nullptr || label->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("diagnostics[%zu] is missing its label", i));
      }
    }
  }
  return Status::Ok();
}

Status ValidateDiagnosticsDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kDiagnosticsSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kDiagnosticsSchema));
  }
  const JsonValue* image = doc.Find("image");
  if (image == nullptr || image->kind != JsonValue::Kind::kString) {
    return Status(ErrorCode::kMalformedData, "missing \"image\" string");
  }
  const JsonValue* health = doc.Find("health");
  if (health == nullptr || health->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"health\" object");
  }
  for (const char* subsystem : {"elf", "dwarf", "btf", "tracepoint", "syscall"}) {
    const JsonValue* state = health->Find(subsystem);
    if (state == nullptr || state->kind != JsonValue::Kind::kString ||
        (state->string != "clean" && state->string != "degraded" &&
         state->string != "missing")) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("health.%s is not clean/degraded/missing", subsystem));
    }
  }
  const JsonValue* fatal = doc.Find("fatal");
  if (fatal == nullptr || fatal->kind != JsonValue::Kind::kBool) {
    return Status(ErrorCode::kMalformedData, "missing \"fatal\" bool");
  }
  const JsonValue* entries = doc.Find("entries");
  if (entries == nullptr) {
    return Status(ErrorCode::kMalformedData, "missing \"entries\" array");
  }
  return ValidateDiagnosticsArray(*entries);
}

Status ValidateAnalysisDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  // Mirrors kAnalysisSchema (src/analyzer/analyzer.h); obs cannot depend on
  // the analyzer layer, so the marker is checked by value.
  constexpr char kWantSchema[] = "depsurf.analysis.v1";
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kWantSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kWantSchema));
  }
  const JsonValue* object = doc.Find("object");
  if (object == nullptr || object->kind != JsonValue::Kind::kString) {
    return Status(ErrorCode::kMalformedData, "missing \"object\" string");
  }
  const JsonValue* against = doc.Find("against");
  if (against == nullptr ||
      (against->kind != JsonValue::Kind::kNull &&
       against->kind != JsonValue::Kind::kObject)) {
    return Status(ErrorCode::kMalformedData, "\"against\" must be null or an object");
  }
  if (against->kind == JsonValue::Kind::kObject) {
    const JsonValue* images = against->Find("images");
    if (images == nullptr || images->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData, "against.images is not a number");
    }
  }
  const JsonValue* programs = doc.Find("programs");
  if (programs == nullptr || programs->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"programs\" array");
  }
  for (size_t i = 0; i < programs->array.size(); ++i) {
    const JsonValue& program = programs->array[i];
    for (const char* key : {"name", "section"}) {
      const JsonValue* member = program.Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("programs[%zu].%s is not a string", i, key));
      }
    }
    for (const char* key : {"insns", "blocks", "reachable_insns", "helper_calls"}) {
      const JsonValue* member = program.Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("programs[%zu].%s is not a number", i, key));
      }
    }
  }
  const JsonValue* relocs = doc.Find("relocs");
  if (relocs == nullptr || relocs->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"relocs\" array");
  }
  for (size_t i = 0; i < relocs->array.size(); ++i) {
    const JsonValue& reloc = relocs->array[i];
    const JsonValue* index = reloc.Find("index");
    if (index == nullptr || index->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("relocs[%zu].index is not a number", i));
    }
    const JsonValue* kind = reloc.Find("kind");
    if (kind == nullptr || kind->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("relocs[%zu].kind is not a string", i));
    }
    for (const char* key : {"reachable", "unguarded"}) {
      const JsonValue* member = reloc.Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kBool) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("relocs[%zu].%s is not a bool", i, key));
      }
    }
    if (against->kind == JsonValue::Kind::kObject) {
      const JsonValue* consequence = reloc.Find("consequence");
      if (consequence == nullptr || consequence->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("relocs[%zu].consequence is not a string "
                                "(required with \"against\")",
                                i));
      }
    }
  }
  const JsonValue* findings = doc.Find("findings");
  if (findings == nullptr || findings->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"findings\" array");
  }
  constexpr const char* kFindingKinds[] = {"raw-offset-deref", "unguarded-reloc",
                                           "unknown-helper", "unreachable-reloc"};
  for (size_t i = 0; i < findings->array.size(); ++i) {
    const JsonValue& finding = findings->array[i];
    const JsonValue* kind = finding.Find("kind");
    bool known = false;
    if (kind != nullptr && kind->kind == JsonValue::Kind::kString) {
      for (const char* name : kFindingKinds) {
        known = known || kind->string == name;
      }
    }
    if (!known) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("findings[%zu].kind is not a known finding kind", i));
    }
    const JsonValue* program = finding.Find("program");
    if (program == nullptr || program->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("findings[%zu].program is not a string", i));
    }
    const JsonValue* insn_off = finding.Find("insn_off");
    if (insn_off == nullptr || insn_off->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("findings[%zu].insn_off is not a number", i));
    }
    const JsonValue* detail = finding.Find("detail");
    if (detail == nullptr || detail->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("findings[%zu].detail is not a string", i));
    }
    const JsonValue* remediation = finding.Find("remediation");
    if (remediation == nullptr || remediation->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("findings[%zu].remediation is not a string", i));
    }
  }
  const JsonValue* summary = doc.Find("summary");
  if (summary == nullptr || summary->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"summary\" object");
  }
  const JsonValue* total = summary->Find("findings");
  if (total == nullptr || total->kind != JsonValue::Kind::kNumber) {
    return Status(ErrorCode::kMalformedData, "summary.findings is not a number");
  }
  double sum = 0;
  for (const char* key :
       {"raw_offset_deref", "unguarded_reloc", "unknown_helper", "unreachable_reloc"}) {
    const JsonValue* count = summary->Find(key);
    if (count == nullptr || count->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("summary.%s is not a number", key));
    }
    sum += count->number;
  }
  if (sum != total->number) {
    return Status(ErrorCode::kMalformedData,
                  "summary per-kind counts do not sum to summary.findings");
  }
  if (total->number != static_cast<double>(findings->array.size())) {
    return Status(ErrorCode::kMalformedData,
                  "summary.findings does not match the findings array length");
  }
  return Status::Ok();
}

Status ValidateRemediationDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  // Mirrors kRemediationSchema (src/analyzer/remediation.h); obs cannot
  // depend on the analyzer layer, so the marker is checked by value.
  constexpr char kWantSchema[] = "depsurf.remediation.v1";
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kWantSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kWantSchema));
  }
  const JsonValue* object = doc.Find("object");
  if (object == nullptr || object->kind != JsonValue::Kind::kString) {
    return Status(ErrorCode::kMalformedData, "missing \"object\" string");
  }
  const JsonValue* against = doc.Find("against");
  if (against == nullptr ||
      (against->kind != JsonValue::Kind::kNull &&
       against->kind != JsonValue::Kind::kObject)) {
    return Status(ErrorCode::kMalformedData, "\"against\" must be null or an object");
  }
  if (against->kind == JsonValue::Kind::kObject) {
    const JsonValue* images = against->Find("images");
    if (images == nullptr || images->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData, "against.images is not a number");
    }
  }
  const JsonValue* items = doc.Find("remediations");
  if (items == nullptr || items->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"remediations\" array");
  }
  size_t fixable_count = 0;
  for (size_t i = 0; i < items->array.size(); ++i) {
    const JsonValue& item = items->array[i];
    const JsonValue* finding = item.Find("finding");
    if (finding == nullptr || finding->kind != JsonValue::Kind::kObject) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("remediations[%zu].finding is not an object", i));
    }
    for (const char* key : {"kind", "program", "detail"}) {
      const JsonValue* member = finding->Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("remediations[%zu].finding.%s is not a string", i, key));
      }
    }
    const JsonValue* insn_off = finding->Find("insn_off");
    if (insn_off == nullptr || insn_off->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("remediations[%zu].finding.insn_off is not a number", i));
    }
    const JsonValue* fixable = item.Find("fixable");
    if (fixable == nullptr || fixable->kind != JsonValue::Kind::kBool) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("remediations[%zu].fixable is not a bool", i));
    }
    if (fixable->boolean) {
      ++fixable_count;
      const JsonValue* off = item.Find("insn_off");
      if (off == nullptr || off->kind != JsonValue::Kind::kNumber) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("remediations[%zu].insn_off is not a number", i));
      }
      const JsonValue* scratch = item.Find("scratch_reg");
      if (scratch == nullptr || scratch->kind != JsonValue::Kind::kNumber) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("remediations[%zu].scratch_reg is not a number", i));
      }
      for (const char* key : {"struct", "field", "guard"}) {
        const JsonValue* member = item.Find(key);
        if (member == nullptr || member->kind != JsonValue::Kind::kString) {
          return Status(ErrorCode::kMalformedData,
                        StrFormat("remediations[%zu].%s is not a string", i, key));
        }
      }
    } else {
      const JsonValue* reason = item.Find("reason");
      if (reason == nullptr || reason->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("remediations[%zu].reason is not a string", i));
      }
    }
  }
  const JsonValue* verification = doc.Find("verification");
  if (verification == nullptr ||
      (verification->kind != JsonValue::Kind::kNull &&
       verification->kind != JsonValue::Kind::kObject)) {
    return Status(ErrorCode::kMalformedData,
                  "\"verification\" must be null or an object");
  }
  if (verification->kind == JsonValue::Kind::kObject) {
    for (const char* key : {"findings_before", "targeted", "findings_after",
                            "targeted_remaining", "new_findings"}) {
      const JsonValue* member = verification->Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("verification.%s is not a number", key));
      }
    }
    const JsonValue* ok = verification->Find("ok");
    if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
      return Status(ErrorCode::kMalformedData, "verification.ok is not a bool");
    }
  }
  const JsonValue* summary = doc.Find("summary");
  if (summary == nullptr || summary->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"summary\" object");
  }
  const JsonValue* total = summary->Find("findings");
  const JsonValue* fixable = summary->Find("fixable");
  const JsonValue* unfixable = summary->Find("unfixable");
  for (const auto& [name, member] :
       {std::pair<const char*, const JsonValue*>{"findings", total},
        {"fixable", fixable},
        {"unfixable", unfixable}}) {
    if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("summary.%s is not a number", name));
    }
  }
  if (fixable->number + unfixable->number != total->number) {
    return Status(ErrorCode::kMalformedData,
                  "summary.fixable + summary.unfixable does not equal summary.findings");
  }
  if (total->number != static_cast<double>(items->array.size())) {
    return Status(ErrorCode::kMalformedData,
                  "summary.findings does not match the remediations array length");
  }
  if (fixable->number != static_cast<double>(fixable_count)) {
    return Status(ErrorCode::kMalformedData,
                  "summary.fixable does not match the fixable remediations count");
  }
  return Status::Ok();
}

Status ValidateFuzzCampaignDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  // Mirrors kFuzzCampaignSchema (src/fuzz/fuzz_campaign.h); obs cannot
  // depend on the fuzz layer, so the marker is checked by value.
  constexpr char kWantSchema[] = "depsurf.fuzz_campaign.v1";
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kWantSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kWantSchema));
  }
  const JsonValue* mode = doc.Find("mode");
  if (mode == nullptr || mode->kind != JsonValue::Kind::kString ||
      (mode->string != "image" && mode->string != "object")) {
    return Status(ErrorCode::kMalformedData,
                  "\"mode\" is not \"image\" or \"object\"");
  }
  const JsonValue* config = doc.Find("config");
  if (config == nullptr || config->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"config\" object");
  }
  for (const char* key : {"rounds", "seed", "time_budget_ms", "max_ledger_entries"}) {
    const JsonValue* member = config->Find(key);
    if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("config.%s is not a number", key));
    }
  }
  const JsonValue* seeds = doc.Find("seeds");
  if (seeds == nullptr || seeds->kind != JsonValue::Kind::kArray ||
      seeds->array.empty()) {
    return Status(ErrorCode::kMalformedData, "missing or empty \"seeds\" array");
  }
  for (size_t i = 0; i < seeds->array.size(); ++i) {
    if (seeds->array[i].kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("seeds[%zu] is not a string", i));
    }
  }
  const JsonValue* candidates = doc.Find("candidates");
  if (candidates == nullptr || candidates->kind != JsonValue::Kind::kNumber) {
    return Status(ErrorCode::kMalformedData, "missing \"candidates\" number");
  }
  const JsonValue* coverage = doc.Find("coverage");
  if (coverage == nullptr || coverage->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"coverage\" object");
  }
  const JsonValue* tuples = coverage->Find("tuples");
  const JsonValue* keys = coverage->Find("keys");
  if (tuples == nullptr || tuples->kind != JsonValue::Kind::kNumber) {
    return Status(ErrorCode::kMalformedData, "coverage.tuples is not a number");
  }
  if (keys == nullptr || keys->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "coverage.keys is not an array");
  }
  if (tuples->number != static_cast<double>(keys->array.size())) {
    return Status(ErrorCode::kMalformedData,
                  "coverage.tuples does not match coverage.keys length");
  }
  const JsonValue* growth = doc.Find("growth");
  if (growth == nullptr || growth->kind != JsonValue::Kind::kArray ||
      growth->array.empty()) {
    return Status(ErrorCode::kMalformedData, "missing or empty \"growth\" array");
  }
  double prev_round = -1;
  double prev_tuples = -1;
  for (size_t i = 0; i < growth->array.size(); ++i) {
    const JsonValue* round = growth->array[i].Find("round");
    const JsonValue* count = growth->array[i].Find("tuples");
    if (round == nullptr || round->kind != JsonValue::Kind::kNumber ||
        count == nullptr || count->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("growth[%zu] lacks numeric round/tuples", i));
    }
    if (round->number < prev_round || count->number < prev_tuples) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("growth[%zu] is not monotonic", i));
    }
    prev_round = round->number;
    prev_tuples = count->number;
  }
  if (prev_tuples != tuples->number) {
    return Status(ErrorCode::kMalformedData,
                  "growth curve does not end at the coverage total");
  }
  const JsonValue* kinds = doc.Find("kinds");
  if (kinds == nullptr || kinds->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"kinds\" array");
  }
  for (size_t i = 0; i < kinds->array.size(); ++i) {
    const JsonValue* name = kinds->array[i].Find("kind");
    const JsonValue* attempts = kinds->array[i].Find("attempts");
    const JsonValue* novel = kinds->array[i].Find("novel");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        attempts == nullptr || attempts->kind != JsonValue::Kind::kNumber ||
        novel == nullptr || novel->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("kinds[%zu] lacks kind/attempts/novel", i));
    }
    if (novel->number > attempts->number) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("kinds[%zu].novel exceeds its attempts", i));
    }
  }
  const JsonValue* corpus = doc.Find("corpus");
  if (corpus == nullptr || corpus->kind != JsonValue::Kind::kArray ||
      corpus->array.empty()) {
    return Status(ErrorCode::kMalformedData, "missing or empty \"corpus\" array");
  }
  for (size_t i = 0; i < corpus->array.size(); ++i) {
    const JsonValue& entry = corpus->array[i];
    for (const char* key :
         {"index", "round", "fault_seed", "parent", "size", "tuple_count"}) {
      const JsonValue* member = entry.Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("corpus[%zu].%s is not a number", i, key));
      }
    }
    for (const char* key : {"name", "kind", "description"}) {
      const JsonValue* member = entry.Find(key);
      if (member == nullptr || member->kind != JsonValue::Kind::kString) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("corpus[%zu].%s is not a string", i, key));
      }
    }
    const JsonValue* is_seed = entry.Find("seed");
    if (is_seed == nullptr || is_seed->kind != JsonValue::Kind::kBool) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("corpus[%zu].seed is not a bool", i));
    }
    const JsonValue* index = entry.Find("index");
    if (index->number != static_cast<double>(i)) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("corpus[%zu].index is out of order", i));
    }
    const JsonValue* parent = entry.Find("parent");
    if (parent->number >= static_cast<double>(i) && !is_seed->boolean) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("corpus[%zu].parent is not an earlier entry", i));
    }
    const JsonValue* new_tuples = entry.Find("new_tuples");
    if (new_tuples == nullptr || new_tuples->kind != JsonValue::Kind::kArray) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("corpus[%zu].new_tuples is not an array", i));
    }
  }
  const JsonValue* minimized = doc.Find("minimized");
  if (minimized == nullptr || minimized->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"minimized\" array");
  }
  for (size_t i = 0; i < minimized->array.size(); ++i) {
    const JsonValue& index = minimized->array[i];
    if (index.kind != JsonValue::Kind::kNumber ||
        index.number >= static_cast<double>(corpus->array.size())) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("minimized[%zu] is not a corpus index", i));
    }
  }
  const JsonValue* oracle = doc.Find("oracle");
  if (oracle == nullptr || oracle->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"oracle\" object");
  }
  const JsonValue* disagreements = oracle->Find("disagreements");
  if (disagreements == nullptr ||
      disagreements->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData,
                  "oracle.disagreements is not an array");
  }
  for (size_t i = 0; i < disagreements->array.size(); ++i) {
    const JsonValue* violation = disagreements->array[i].Find("violation");
    const JsonValue* fault_seed = disagreements->array[i].Find("fault_seed");
    if (violation == nullptr || violation->kind != JsonValue::Kind::kString ||
        fault_seed == nullptr || fault_seed->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("oracle.disagreements[%zu] lacks its replay key", i));
    }
  }
  const JsonValue* hangs = doc.Find("hangs");
  if (hangs == nullptr || hangs->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"hangs\" array");
  }
  const JsonValue* exit_code = doc.Find("exit_code");
  if (exit_code == nullptr || exit_code->kind != JsonValue::Kind::kNumber ||
      (exit_code->number != 0 && exit_code->number != 1 && exit_code->number != 2)) {
    return Status(ErrorCode::kMalformedData, "\"exit_code\" is not 0, 1, or 2");
  }
  double want_exit = 0;
  if (!hangs->array.empty()) {
    want_exit = 1;
  } else if (!disagreements->array.empty()) {
    want_exit = 2;
  }
  if (exit_code->number != want_exit) {
    return Status(ErrorCode::kMalformedData,
                  "exit_code disagrees with the hang/disagreement arrays");
  }
  return Status::Ok();
}

Status ValidateServeReportDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  // Mirrors kServeReportSchema (src/serve/serve.h); obs cannot depend on
  // the serve layer, so the marker is checked by value.
  constexpr char kWantSchema[] = "depsurf.serve_report.v1";
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kWantSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kWantSchema));
  }
  const JsonValue* jobs = doc.Find("jobs");
  if (jobs == nullptr || jobs->kind != JsonValue::Kind::kNumber || jobs->number < 0) {
    return Status(ErrorCode::kMalformedData, "\"jobs\" is not a nonnegative number");
  }
  const JsonValue* datasets = doc.Find("datasets");
  if (datasets == nullptr || datasets->kind != JsonValue::Kind::kArray ||
      datasets->array.empty()) {
    return Status(ErrorCode::kMalformedData, "missing or empty \"datasets\" array");
  }
  for (size_t i = 0; i < datasets->array.size(); ++i) {
    const JsonValue& entry = datasets->array[i];
    const JsonValue* path = entry.Find("path");
    if (path == nullptr || path->kind != JsonValue::Kind::kString) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("datasets[%zu].path is not a string", i));
    }
    const JsonValue* format = entry.Find("format");
    if (format == nullptr || format->kind != JsonValue::Kind::kString ||
        (format->string != "v1" && format->string != "v2")) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("datasets[%zu].format is not \"v1\" or \"v2\"", i));
    }
    const JsonValue* images = entry.Find("images");
    if (images == nullptr || images->kind != JsonValue::Kind::kNumber ||
        images->number < 0) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("datasets[%zu].images is not a count", i));
    }
  }
  const JsonValue* requests = doc.Find("requests");
  const JsonValue* ok = doc.Find("ok");
  const JsonValue* errors = doc.Find("errors");
  for (const auto& [name, member] :
       {std::pair<const char*, const JsonValue*>{"requests", requests},
        {"ok", ok},
        {"errors", errors}}) {
    if (member == nullptr || member->kind != JsonValue::Kind::kNumber ||
        member->number < 0) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("\"%s\" is not a nonnegative number", name));
    }
  }
  if (ok->number + errors->number != requests->number) {
    return Status(ErrorCode::kMalformedData, "ok + errors != requests");
  }
  const JsonValue* cache = doc.Find("cache");
  if (cache == nullptr || cache->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"cache\" object");
  }
  for (const char* key : {"hits", "misses", "entries", "capacity"}) {
    const JsonValue* member = cache->Find(key);
    if (member == nullptr || member->kind != JsonValue::Kind::kNumber ||
        member->number < 0) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("cache.%s is not a nonnegative number", key));
    }
  }
  if (cache->Find("hits")->number + cache->Find("misses")->number != ok->number) {
    return Status(ErrorCode::kMalformedData, "cache hits + misses != ok responses");
  }
  if (cache->Find("entries")->number > cache->Find("misses")->number) {
    return Status(ErrorCode::kMalformedData, "cache entries exceed recorded misses");
  }
  if (cache->Find("entries")->number > cache->Find("capacity")->number) {
    return Status(ErrorCode::kMalformedData, "cache entries exceed the capacity");
  }
  return Status::Ok();
}

std::string CanonicalMaskedJson(const JsonValue& value) {
  const JsonValue* schema = value.Find("schema");
  if (schema != nullptr && schema->kind == JsonValue::Kind::kString &&
      (schema->string == kRunReportSchema || schema->string == kRunReportAggSchema)) {
    JsonValue sorted = value;
    for (auto& [key, member] : sorted.object) {
      if (key == "spans" && member.kind == JsonValue::Kind::kArray) {
        std::sort(member.array.begin(), member.array.end(),
                  [](const JsonValue& a, const JsonValue& b) {
                    return CompareReportSpans(a, b) < 0;
                  });
      }
    }
    std::string out;
    AppendCanonical(out, sorted);
    out += "\n";
    return out;
  }
  std::string out;
  AppendCanonical(out, value);
  out += "\n";
  return out;
}

}  // namespace obs
}  // namespace depsurf
