#include "src/obs/diag.h"

#include <cstdio>

namespace depsurf {
namespace obs {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kTrace:
      return "trace";
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void Diag(Severity severity, const std::string& message) {
  fprintf(stderr, "depsurf: %s: %s\n", SeverityName(severity), message.c_str());
}

void Diag(Severity severity, const std::string& message, const Error& error) {
  fprintf(stderr, "depsurf: %s: %s: %s\n", SeverityName(severity), message.c_str(),
          error.ToString().c_str());
}

int DiagError(const std::string& message) {
  Diag(Severity::kError, message);
  return 1;
}

int DiagError(const Error& error) {
  Diag(Severity::kError, error.ToString());
  return 1;
}

int DiagError(const std::string& context, const Error& error) {
  Diag(Severity::kError, context, error);
  return 1;
}

}  // namespace obs
}  // namespace depsurf
