#include "src/obs/metrics.h"

namespace depsurf {
namespace obs {

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  size_t log2 = 0;
  while (value >>= 1) {
    ++log2;
  }
  return log2 + 1;
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  return uint64_t{1} << (bucket - 1);
}

double Histogram::Percentile(double q) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    double n = static_cast<double>(bucket(b));
    if (n == 0) {
      continue;
    }
    if (cumulative + n >= target) {
      if (b == 0) {
        return 0;
      }
      double lower = static_cast<double>(BucketLowerBound(b));
      double fraction = (target - cumulative) / n;
      return lower + fraction * lower;  // bucket width equals its lower bound
    }
    cumulative += n;
  }
  // Unreachable when the atomics are quiescent (target <= count); under a
  // racing writer fall back to the largest representable bound.
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

std::atomic<uint64_t>* MetricsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<std::atomic<uint64_t>>(0)).first;
  }
  return it->second.get();
}

std::atomic<int64_t>* MetricsRegistry::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<std::atomic<int64_t>>(0)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::Incr(std::string_view name, uint64_t delta) {
  Counter(name)->fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(std::string_view name, int64_t value) {
  Gauge(name)->store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Record(std::string_view name, uint64_t value) {
  GetHistogram(name)->Record(value);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::HistogramSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

bool IsTimingMetricName(std::string_view name) {
  for (std::string_view suffix : {"_ns", "_us", "_ms", "_seconds"}) {
    if (name.size() >= suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      return true;
    }
  }
  return false;
}

}  // namespace obs
}  // namespace depsurf
