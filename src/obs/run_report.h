// Machine-readable run reports: one JSON (or human text) document combining
// the finished span tree and the metrics registry.
//
// Schema (depsurf.run_report.v1):
//   {
//     "schema": "depsurf.run_report.v1",
//     "spans": [ {"name": "...", "dur_ns": N, "cpu_ns": N,
//                 "alloc_count": N, "alloc_bytes": N,
//                 "attrs": {"k": "v", ...}, "children": [...]}, ... ],
//     "counters": {"btf.types_decoded": N, ...},
//     "gauges": {"study.build_dataset.wall_ms": N, ...},
//     "histograms": {"elf.section_bytes":
//         {"count": N, "sum": N, "buckets": [[lower_bound, count], ...]}, ...},
//     "diagnostics": [ {"severity": "degraded", "subsystem": "dwarf",
//                       "code": "malformed_data", "offset": N,
//                       "message": "..."}, ... ]
//   }
//
// Key order is deterministic (maps are sorted, span attrs keep insertion
// order). Nondeterministic values — span "dur_ns"/"cpu_ns" fields, the
// allocator-dependent "alloc_count"/"alloc_bytes" fields, plus any metric
// or attribute whose key has a timing suffix (_ns/_us/_ms/_seconds) — are
// zeroed by serializing with mask_timings, after which two runs over the
// same inputs are byte-identical.
#ifndef DEPSURF_SRC_OBS_RUN_REPORT_H_
#define DEPSURF_SRC_OBS_RUN_REPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/diagnostic_ledger.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

class Context;

inline constexpr char kRunReportSchema[] = "depsurf.run_report.v1";
// N merged run reports (see report_merge.h for the schema).
inline constexpr char kRunReportAggSchema[] = "depsurf.run_report_agg.v1";

struct RunReportOptions {
  bool mask_timings = false;  // zero dur/cpu/alloc and *_ns/_us/_ms/_seconds fields
};

// Serializes the given collector + registry. `diagnostics` fills the
// report's "diagnostics" section (sorted on output); pass nullptr for an
// empty section. The Global* helpers below supply the process-wide
// DiagnosticsCollector automatically.
std::string RunReportJson(const SpanCollector& spans, const MetricsRegistry& metrics,
                          const RunReportOptions& options = {},
                          const std::vector<DiagnosticEntry>* diagnostics = nullptr);
std::string RunReportText(const SpanCollector& spans, const MetricsRegistry& metrics);

// Serializes one obs::Context — the spans, metrics, and diagnostics it
// collected — as a run_report.v1 document. This is how report-mode corpus
// builds turn each image's scoped context into its per-image report.
std::string ContextRunReportJson(const Context& context, const RunReportOptions& options = {});

// Globals convenience (what the CLI and benches use); equivalent to
// serializing Context::Root().
std::string GlobalRunReportJson(const RunReportOptions& options = {});
std::string GlobalRunReportText();
Status WriteGlobalRunReport(const std::string& path, const RunReportOptions& options = {});

// Escapes a string for embedding in a JSON document (no surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_RUN_REPORT_H_
