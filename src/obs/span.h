// ScopedSpan: an RAII tracer producing a nested span tree over the analysis
// pipeline. Each thread maintains its own stack of active spans; a span
// opened while another is active on the same thread becomes its child, and
// a span that finishes with no parent is handed to the process-wide
// SpanCollector. Durations come from the monotonic clock; each span also
// carries its thread CPU time and (when DEPSURF_PROFILE_ALLOC is on) the
// allocation count/bytes charged to its thread while it was open, feeding
// the profile analyzer in src/obs/profile.h.
//
// Span names follow the metric convention ("surface.extract"); attributes
// carry small facts like the image label, section name, or record counts.
// Attribute keys with timing suffixes (_ns/_us/_ms/_seconds) are masked by
// deterministic serialization, everything else must be reproducible.
#ifndef DEPSURF_SRC_OBS_SPAN_H_
#define DEPSURF_SRC_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/alloc_hooks.h"

namespace depsurf {
namespace obs {

struct SpanNode {
  std::string name;
  uint64_t start_ns = 0;  // monotonic clock at open (steady_clock epoch)
  uint64_t dur_ns = 0;
  // Thread CPU time (CLOCK_THREAD_CPUTIME_ID delta) consumed between open
  // and close on the opening thread, clamped to dur_ns so the invariant
  // cpu_ns <= dur_ns holds for single-threaded spans despite clock
  // granularity skew. Inclusive of same-thread children.
  uint64_t cpu_ns = 0;
  // Allocation delta on the opening thread (see alloc_hooks.h). Always 0
  // unless the build was configured with -DDEPSURF_PROFILE_ALLOC=ON.
  // Inclusive of same-thread children, like cpu_ns.
  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;
  uint32_t tid = 0;  // small per-thread trace id (1, 2, ...), see ThreadTraceId
  std::vector<std::pair<std::string, std::string>> attrs;  // insertion order
  std::vector<SpanNode> children;
};

// Stable small integer identifying the calling thread in trace output:
// assigned on first use, 1-based, never reused within the process. Which
// thread gets which id depends on scheduling, so trace ids are
// nondeterministic across runs (like every timing field).
uint32_t ThreadTraceId();

// Total order over span trees ignoring every nondeterministic field
// (start_ns, dur_ns, tid, timing-suffixed attr values): name first, then
// attrs, then children recursively. Used to sort racy multi-threaded root
// finish order into a deterministic sequence for masked serialization.
int CompareSpanNodesMasked(const SpanNode& a, const SpanNode& b);

// Collects finished root spans, in finish order. Thread-safe.
class SpanCollector {
 public:
  static SpanCollector& Global();

  void AddRoot(SpanNode node);
  std::vector<SpanNode> Snapshot() const;
  void Clear();

  // When enabled, every span prints one line to stderr as it finishes
  // (leaf-first, indented by nesting depth) via the diag helper.
  void SetLiveTrace(bool enabled) { live_trace_.store(enabled, std::memory_order_relaxed); }
  bool live_trace() const { return live_trace_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::vector<SpanNode> roots_;
  std::atomic<bool> live_trace_{false};
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, const char* value);
  void AddAttr(std::string key, uint64_t value);

  // Nesting depth of this span on its thread (0 for a root).
  int depth() const;

 private:
  SpanNode node_;
  ScopedSpan* parent_;
  std::chrono::steady_clock::time_point start_;
  uint64_t cpu_start_ns_;
  [[maybe_unused]] AllocStats alloc_start_;  // only read under DEPSURF_PROFILE_ALLOC
};

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_SPAN_H_
