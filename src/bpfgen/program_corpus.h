// Builds the 53-program eBPF corpus (Table 7) and the scripted kernel
// constructs its synthesized dependencies require.
//
// biotop and readahead use the curated real-kernel lineages (Figure 4);
// every other program's dependencies are constraint-synthesized: each
// dependency gets a mismatch profile such that the per-category counts of
// Table 7 are reproduced exactly against the 21-image corpus. Pool names
// are real kernel identifiers; histories are synthetic.
#ifndef DEPSURF_SRC_BPFGEN_PROGRAM_CORPUS_H_
#define DEPSURF_SRC_BPFGEN_PROGRAM_CORPUS_H_

#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/bpfgen/table7.h"
#include "src/kernelgen/scripted.h"

namespace depsurf {

struct ProgramCorpus {
  // One object per Table 7 row, in order.
  std::vector<BpfObject> objects;
  // Scripted constructs the synthesized dependencies need; merge into the
  // kernel catalog before generating images.
  ScriptedCatalog additions;
};

// Deterministic; safe to call repeatedly.
ProgramCorpus BuildProgramCorpus();

// Analyzer showcase objects (not Table 7 rows; dependencies use the
// curated real-kernel lineages, so they check meaningfully against study
// datasets). BuildGuardedProbe wraps its request::rq_disk access in a
// bpf_core_field_exists guard; BuildRawOffsetProbe reads the same field
// through a hardcoded offset with no relocation instead — the pair the
// analyzer's guard/raw-offset lints are locked against.
BpfObject BuildGuardedProbe();
BpfObject BuildRawOffsetProbe();

// Curated catalog + corpus additions: the catalog the study images use.
ScriptedCatalog BuildStudyCatalog();

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPFGEN_PROGRAM_CORPUS_H_
