// Realistic kernel-name pools for synthesized program dependencies. Pool
// names are real Linux identifiers; their version histories are synthesized
// from mismatch profiles (see program_corpus.cc). Names overlapping the
// curated catalog are deliberately excluded.
#ifndef DEPSURF_SRC_BPFGEN_DEP_POOLS_H_
#define DEPSURF_SRC_BPFGEN_DEP_POOLS_H_

#include <cstddef>
#include <string>

namespace depsurf {

// Draws the i-th pool name; falls back to a generated "<prog>"-scoped name
// once the pool is exhausted. `i` is a global cursor across all programs.
std::string FuncPoolName(size_t i, const std::string& program);
std::string StructPoolName(size_t i, const std::string& program);
std::string TracepointPoolName(size_t i, const std::string& program);

// Syscall pools: every "stable" name exists on all study images; every
// "flaky" name is genuinely absent somewhere in the corpus (legacy calls
// dropped by arm64/riscv, or late additions missing from old kernels).
std::string StableSyscall(size_t i);
std::string FlakySyscall(size_t i);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPFGEN_DEP_POOLS_H_
