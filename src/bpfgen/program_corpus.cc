#include "src/bpfgen/program_corpus.h"

#include <cassert>

#include "src/bpf/bpf_builder.h"
#include "src/bpfgen/dep_pools.h"
#include "src/kernelgen/syscalls.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

constexpr KernelVersion kV44{4, 4};
constexpr KernelVersion kV58{5, 8};
constexpr KernelVersion kV515{5, 15};
constexpr KernelVersion kEnd{999, 0};

// A synthesized struct dependency: `stable`/`changed` fields exist for the
// struct's whole lifetime (changed ones widen at the change breakpoint);
// `absent` fields only exist from v5.8. If `struct_absent`, the struct
// itself only exists from v5.8 (all its fields count as absent).
struct DepStructPlan {
  std::string name;
  int stable = 0;
  int absent = 0;
  int changed = 0;
  bool struct_absent = false;
};

// Registers the struct lineage and adds the program's field accesses.
Status RegisterDepStruct(ScriptedCatalog& cat, BpfObjectBuilder& builder,
                         const DepStructPlan& plan) {
  KernelVersion born = plan.struct_absent ? kV58 : kV44;
  KernelVersion change_at = plan.struct_absent ? kV515 : kV58;
  auto make = [&](bool with_absent, bool post_change) {
    StructSpec spec;
    spec.name = plan.name;
    for (int i = 0; i < plan.stable; ++i) {
      spec.fields.push_back({StrFormat("val%d", i), "unsigned long"});
    }
    for (int i = 0; i < plan.changed; ++i) {
      spec.fields.push_back({StrFormat("w%d", i), post_change ? "long" : "int"});
    }
    if (with_absent) {
      for (int i = 0; i < plan.absent; ++i) {
        spec.fields.push_back({StrFormat("new%d", i), "u64"});
      }
    }
    return spec;
  };
  ScriptedStruct st;
  if (plan.changed > 0 || plan.absent > 0) {
    st.stages.push_back({{born, change_at}, make(false, false)});
    st.stages.push_back({{change_at, kEnd}, make(true, true)});
  } else {
    st.stages.push_back({{born, kEnd}, make(true, false)});
  }
  cat.AddStruct(std::move(st));

  if (plan.stable + plan.absent + plan.changed == 0) {
    return builder.TouchStruct(plan.name);
  }
  for (int i = 0; i < plan.stable; ++i) {
    DEPSURF_RETURN_IF_ERROR(
        builder.AccessField(plan.name, StrFormat("val%d", i), "unsigned long"));
  }
  for (int i = 0; i < plan.changed; ++i) {
    // The program expects the original (pre-widening) type: stray read.
    DEPSURF_RETURN_IF_ERROR(builder.AccessField(plan.name, StrFormat("w%d", i), "int"));
  }
  for (int i = 0; i < plan.absent; ++i) {
    DEPSURF_RETURN_IF_ERROR(builder.AccessField(plan.name, StrFormat("new%d", i), "u64"));
  }
  return Status::Ok();
}

// Hand-coded per-program syscall dependency lists (real names).
std::vector<std::string> SyscallDepsFor(const ProgramSpec& spec) {
  if (spec.name == "tracee") {
    std::vector<std::string> all = AllSyscallNames();
    if (all.size() > static_cast<size_t>(spec.syscalls.total)) {
      all.resize(static_cast<size_t>(spec.syscalls.total));
    }
    return all;
  }
  if (spec.name == "mountsnoop") {
    return {"mount", "umount2"};
  }
  if (spec.name == "sigsnoop") {
    return {"kill", "tgkill", "rt_sigqueueinfo"};
  }
  if (spec.name == "execsnoop") {
    return {"execve"};
  }
  if (spec.name == "statsnoop") {
    return {"newfstatat", "stat", "lstat", "statx", "access"};
  }
  if (spec.name == "opensnoop") {
    return {"openat", "open"};
  }
  if (spec.name == "futexctn") {
    return {"futex"};
  }
  if (spec.name == "syncsnoop") {
    // sync_file_range2 exists only on ARM OABI targets: absent everywhere
    // in this corpus.
    return {"sync", "fsync", "fdatasync", "syncfs", "msync", "sync_file_range2"};
  }
  // Generic fallback (unused by the current table).
  std::vector<std::string> out;
  for (int i = 0; i < spec.syscalls.absent; ++i) {
    out.push_back(FlakySyscall(static_cast<size_t>(i)));
  }
  for (int i = spec.syscalls.absent; i < spec.syscalls.total; ++i) {
    out.push_back(StableSyscall(static_cast<size_t>(i)));
  }
  return out;
}

// The two curated case-study programs (Figure 4).
BpfObject BuildBiotop() {
  BpfObjectBuilder builder("biotop");
  builder.AttachKprobe("blk_mq_start_request")
      .AttachKprobe("blk_account_io_start")
      .AttachKprobe("blk_account_io_done")
      .AttachKprobe("__blk_account_io_start")
      .AttachKprobe("__blk_account_io_done")
      .AttachTracepoint("block", "block_io_start")
      .AttachTracepoint("block", "block_io_done");
  Status ok = builder.AccessField("request", "rq_disk", "struct gendisk *");
  ok = builder.AccessField("request", "cmd_flags", "unsigned int");
  ok = builder.AccessField("request", "__sector", "sector_t");
  ok = builder.AccessField("request", "__data_len", "unsigned int");
  ok = builder.AccessField("request", "start_time_ns", "u64");
  ok = builder.AccessField("request_queue", "disk", "struct gendisk *");
  ok = builder.AccessField("gendisk", "disk_name", "char[32]");
  (void)ok;
  return builder.Build();
}

BpfObject BuildReadahead() {
  BpfObjectBuilder builder("readahead");
  builder.AttachKprobe("__do_page_cache_readahead")
      .AttachKprobe("do_page_cache_ra")
      .AttachKprobe("__page_cache_alloc")
      .AttachKprobe("filemap_alloc_folio");
  Status ok = builder.TouchStruct("file_ra_state");
  ok = builder.AccessField("folio", "flags", "unsigned long");
  (void)ok;
  return builder.Build();
}

}  // namespace

BpfObject BuildGuardedProbe() {
  BpfObjectBuilder builder("guarded_probe");
  builder.AttachKprobe("blk_account_io_start");
  // perf_event_output (v4.4) is available corpus-wide; ringbuf_output
  // (v5.8) trips the availability lint on older images.
  builder.CallHelper(25);
  Status ok = builder.BeginGuard("request", "rq_disk", "struct gendisk *");
  ok = builder.AccessField("request", "rq_disk", "struct gendisk *");
  ok = builder.EndGuard();
  (void)ok;
  builder.CallHelper(133);
  return builder.Build();
}

BpfObject BuildRawOffsetProbe() {
  BpfObjectBuilder builder("rawoffset_probe");
  builder.AttachKprobe("blk_account_io_start");
  // The non-CO-RE pattern: request->rq_disk read at the offset the author's
  // build machine happened to have.
  builder.RawOffsetDeref(104);
  builder.CallHelper(6);
  return builder.Build();
}

ProgramCorpus BuildProgramCorpus() {
  ProgramCorpus corpus;
  size_t func_cursor = 0;
  size_t struct_cursor = 0;
  size_t tp_cursor = 0;

  for (const ProgramSpec& spec : Table7Programs()) {
    if (spec.name == "biotop") {
      corpus.objects.push_back(BuildBiotop());
      continue;
    }
    if (spec.name == "readahead") {
      corpus.objects.push_back(BuildReadahead());
      continue;
    }

    BpfObjectBuilder builder(spec.name);

    // ---- Functions: greedy profile assignment (dep i carries every
    // category whose target count exceeds i), maximizing overlap so the
    // per-category unique-dependency counts match exactly.
    for (int i = 0; i < spec.funcs.total; ++i) {
      MismatchProfile profile;
      profile.absent = i < spec.funcs.absent;
      profile.changed = i < spec.funcs.changed;
      profile.full_inline = i < spec.funcs.full_inline;
      profile.selective = i < spec.funcs.selective;
      profile.transformed = i < spec.funcs.transformed;
      profile.duplicated = i < spec.funcs.duplicated;
      std::string name = FuncPoolName(func_cursor++, spec.name);
      corpus.additions.AddProfileFunc(name, profile);
      builder.AttachKprobe(name);
    }

    // ---- Structs and fields. Absent structs host the absent-field budget
    // (every field of an absent struct is absent on pre-v5.8 images);
    // changed fields prefer present structs; overlap (changed fields that
    // must also be absent) lands in absent structs.
    int n_abs = spec.structs.absent;
    int n_present = spec.structs.total - n_abs;
    int f_abs = spec.fields.absent;
    int f_chg = spec.fields.changed;
    int overlap = std::max(0, f_abs + f_chg - spec.fields.total);
    int chg_in_present = n_present > 0 ? f_chg - overlap : 0;
    int chg_in_absent = f_chg - chg_in_present;
    int fields_in_absent = n_abs > 0 ? f_abs : 0;
    int abs_profile_fields = f_abs - fields_in_absent;  // extra, in present structs
    int stable_fields =
        spec.fields.total - fields_in_absent - chg_in_present - abs_profile_fields;

    for (int i = 0; i < n_abs; ++i) {
      DepStructPlan plan;
      plan.name = StructPoolName(struct_cursor++, spec.name);
      plan.struct_absent = true;
      int share = fields_in_absent / n_abs + (i < fields_in_absent % n_abs ? 1 : 0);
      int chg_share = chg_in_absent / n_abs + (i < chg_in_absent % n_abs ? 1 : 0);
      plan.changed = std::min(chg_share, share);
      plan.stable = share - plan.changed;
      Status ok = RegisterDepStruct(corpus.additions, builder, plan);
      (void)ok;
    }
    for (int i = 0; i < n_present; ++i) {
      DepStructPlan plan;
      plan.name = StructPoolName(struct_cursor++, spec.name);
      plan.stable = stable_fields / n_present + (i < stable_fields % n_present ? 1 : 0);
      plan.changed = chg_in_present / n_present + (i < chg_in_present % n_present ? 1 : 0);
      plan.absent =
          abs_profile_fields / n_present + (i < abs_profile_fields % n_present ? 1 : 0);
      Status ok = RegisterDepStruct(corpus.additions, builder, plan);
      (void)ok;
    }

    // ---- Tracepoints.
    for (int i = 0; i < spec.tracepoints.total; ++i) {
      bool absent = i < spec.tracepoints.absent;
      bool changed = i < spec.tracepoints.changed;
      std::string name = TracepointPoolName(tp_cursor++, spec.name);
      corpus.additions.AddProfileTracepoint(name, absent, changed);
      builder.AttachTracepoint(spec.subsystem, name);
    }

    // ---- System calls (real names; see SyscallDepsFor).
    for (const std::string& syscall : SyscallDepsFor(spec)) {
      builder.AttachSyscall(syscall);
    }

    corpus.objects.push_back(builder.Build());
  }
  return corpus;
}

ScriptedCatalog BuildStudyCatalog() {
  ScriptedCatalog catalog = BuildCuratedCatalog();
  catalog.Merge(BuildProgramCorpus().additions);
  return catalog;
}

}  // namespace depsurf
