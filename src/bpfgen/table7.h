// The 53 analyzed eBPF programs (52 BCC libbpf-tools + Tracee) with their
// Table 7 dependency/mismatch targets. The corpus builder synthesizes
// dependency plans that reproduce these counts against the 21-image corpus.
#ifndef DEPSURF_SRC_BPFGEN_TABLE7_H_
#define DEPSURF_SRC_BPFGEN_TABLE7_H_

#include <string>
#include <vector>

namespace depsurf {

struct FuncTargets {
  int total = 0;
  int absent = 0;
  int changed = 0;
  int full_inline = 0;
  int selective = 0;
  int transformed = 0;
  int duplicated = 0;
};

struct StructTargets {
  int total = 0;
  int absent = 0;
};

struct FieldTargets {
  int total = 0;
  int absent = 0;
  int changed = 0;
};

struct TracepointTargets {
  int total = 0;
  int absent = 0;
  int changed = 0;
};

struct SyscallTargets {
  int total = 0;
  int absent = 0;
};

struct ProgramSpec {
  std::string name;
  // "cpu", "memory", "storage", "network", "security".
  std::string subsystem;
  FuncTargets funcs;
  StructTargets structs;
  FieldTargets fields;
  TracepointTargets tracepoints;
  SyscallTargets syscalls;

  bool ExpectClean() const {
    return funcs.absent + funcs.changed + funcs.full_inline + funcs.selective +
               funcs.transformed + funcs.duplicated + structs.absent + fields.absent +
               fields.changed + tracepoints.absent + tracepoints.changed + syscalls.absent ==
           0;
  }
};

// All 53 rows, in the paper's order.
const std::vector<ProgramSpec>& Table7Programs();

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPFGEN_TABLE7_H_
