#include "src/bpfgen/dep_pools.h"

#include "src/util/str_util.h"

namespace depsurf {

namespace {

constexpr const char* kFuncPool[] = {
    "vfs_read",          "vfs_write",          "vfs_open",          "vfs_unlink",
    "vfs_getattr",       "vfs_statx",          "mutex_lock",        "mutex_unlock",
    "mutex_trylock",     "mutex_lock_interruptible", "mutex_lock_killable",
    "down_read",         "down_write",         "up_read",           "up_write",
    "down_read_trylock", "down_write_trylock", "rwsem_down_read_slowpath",
    "rwsem_down_write_slowpath", "rt_mutex_lock", "do_sys_open",    "do_sys_openat2",
    "do_filp_open",      "path_openat",        "do_dentry_open",    "generic_file_read_iter",
    "generic_file_write_iter", "ext4_file_open", "ext4_sync_file",  "new_sync_read",
    "new_sync_write",    "ksys_read",          "ksys_write",        "sock_sendmsg",
    "sock_recvmsg",      "tcp_v4_connect",     "tcp_v6_connect",    "tcp_close",
    "tcp_set_state",     "tcp_sendmsg",        "tcp_cleanup_rbuf",  "tcp_rcv_state_process",
    "tcp_rcv_established", "tcp_drop",         "inet_csk_accept",   "inet_listen",
    "udp_sendmsg",       "udp_recvmsg",        "ip_queue_xmit",     "dev_queue_xmit",
    "netif_receive_skb", "kmem_cache_alloc",   "kmem_cache_free",   "__kmalloc",
    "kfree",             "__alloc_pages",      "free_pages",        "handle_mm_fault",
    "do_page_fault",     "shrink_node",        "swap_readpage",     "mark_page_accessed",
    "add_to_page_cache_lru", "account_page_dirtied", "folio_mark_dirty", "mark_buffer_dirty",
    "submit_bio",        "bio_endio",          "blk_mq_complete_request", "md_flush_request",
    "nfs_file_read",     "oom_kill_process",   "cap_capable",       "futex_wait",
    "futex_wake",        "do_exit",            "kernel_clone",      "wake_up_new_task",
    "ttwu_do_wakeup",    "migrate_misplaced_page", "migrate_pages_batch", "do_numa_page",
    "sched_setaffinity", "pick_next_task_fair", "dequeue_task_fair", "enqueue_task_fair",
    "sock_alloc_file",   "inet_bind",          "inet6_bind",        "sk_stream_write_space",
    "unix_stream_sendmsg", "napi_gro_receive", "net_rx_action",     "icmp_send",
};
constexpr size_t kFuncPoolSize = sizeof(kFuncPool) / sizeof(kFuncPool[0]);

constexpr const char* kStructPool[] = {
    "sk_buff",        "inet_sock",     "tcp_sock",       "udp_sock",      "socket",
    "msghdr",         "path",          "dentry",         "inode",         "super_block",
    "address_space",  "page",          "vm_area_struct", "mm_struct",     "kmem_cache",
    "bio_vec",        "bvec_iter",     "blk_mq_ctx",     "hd_struct",     "mutex",
    "rw_semaphore",   "futex_q",       "k_sigaction",    "kernfs_node",   "cgroup",
    "css_set",        "perf_event",    "irq_desc",       "softirq_action", "workqueue_struct",
    "work_struct",    "timer_list",    "hrtimer",        "mnt_namespace", "vfsmount",
    "nsproxy",        "pid_namespace", "files_struct",   "fdtable",       "signal_struct",
    "sighand_struct", "cred",          "seq_file",       "kiocb",         "iov_iter",
    "oom_control",    "mem_cgroup",    "zone",           "pglist_data",   "scan_control",
};
constexpr size_t kStructPoolSize = sizeof(kStructPool) / sizeof(kStructPool[0]);

constexpr const char* kTracepointPool[] = {
    "sched_process_exit",  "sched_process_fork",  "sched_process_exec",
    "sched_wakeup",        "sched_wakeup_new",    "sched_stat_sleep",
    "sched_stat_blocked",  "sched_migrate_task",  "signal_generate",
    "signal_deliver",      "mm_page_alloc",       "mm_page_free",
    "mm_vmscan_direct_reclaim_begin", "mm_vmscan_direct_reclaim_end",
    "mm_compaction_begin", "kmalloc",             "kfree",
    "kmem_cache_alloc_node", "block_bio_queue",   "block_bio_complete",
    "block_getrq",         "block_split",         "block_unplug",
    "softirq_entry",       "softirq_exit",        "softirq_raise",
    "irq_handler_entry",   "irq_handler_exit",    "power_cpu_frequency",
    "power_cpu_idle",      "tcp_retransmit_skb",  "tcp_probe",
    "tcp_destroy_sock",    "inet_sock_set_state", "net_dev_queue",
    "net_dev_xmit",        "netif_rx",            "napi_poll",
    "writeback_dirty_page", "ext4_da_write_begin", "ext4_sync_file_enter",
    "nfs_initiate_read",   "timer_start",         "timer_expire_entry",
    "hrtimer_start",       "workqueue_execute_start", "oom_score_adj_update",
};
constexpr size_t kTracepointPoolSize = sizeof(kTracepointPool) / sizeof(kTracepointPool[0]);

constexpr const char* kStableSyscalls[] = {
    "read",        "write",     "close",      "openat",      "fsync",      "fdatasync",
    "execve",      "futex",     "nanosleep",  "kill",        "tgkill",     "mmap",
    "munmap",      "mprotect",  "brk",        "ioctl",       "readv",      "writev",
    "sendmsg",     "recvmsg",   "bind",       "listen",      "accept4",    "connect",
    "unlinkat",    "mkdirat",   "renameat2",  "sync",        "syncfs",     "msync",
    "mount",       "umount2",   "rt_sigqueueinfo", "sched_yield", "getpid", "gettid",
    "exit_group",  "wait4",     "clock_gettime", "statfs",   "fstatfs",    "ftruncate",
    "fallocate",   "newfstatat",
};
constexpr size_t kNumStableSyscalls = sizeof(kStableSyscalls) / sizeof(kStableSyscalls[0]);

constexpr const char* kFlakySyscalls[] = {
    "open",     "stat",          "lstat",       "fork",        "vfork",       "chmod",
    "pipe",     "poll",          "select",      "dup2",        "alarm",       "pause",
    "utime",    "time",          "getdents",    "eventfd",     "signalfd",    "inotify_init",
    "epoll_create", "epoll_wait", "access",     "creat",       "rename",      "mkdir",
    "rmdir",    "link",          "unlink",      "symlink",     "readlink",    "openat2",
    "clone3",   "statx",         "close_range", "faccessat2",  "pidfd_getfd",
    "landlock_create_ruleset",   "futex_waitv", "memfd_secret", "process_madvise",
    "epoll_pwait2", "io_uring_setup", "io_uring_enter", "pkey_alloc", "pkey_free",
    "rseq",     "mount_setattr", "process_mrelease", "cachestat",
};
constexpr size_t kNumFlakySyscalls = sizeof(kFlakySyscalls) / sizeof(kFlakySyscalls[0]);

}  // namespace

std::string FuncPoolName(size_t i, const std::string& program) {
  if (i < kFuncPoolSize) {
    return kFuncPool[i];
  }
  return StrFormat("bpf_target_%s_%zu", program.c_str(), i - kFuncPoolSize);
}

std::string StructPoolName(size_t i, const std::string& program) {
  if (i < kStructPoolSize) {
    return kStructPool[i];
  }
  return StrFormat("%s_ctx_%zu", program.c_str(), i - kStructPoolSize);
}

std::string TracepointPoolName(size_t i, const std::string& program) {
  if (i < kTracepointPoolSize) {
    return kTracepointPool[i];
  }
  return StrFormat("%s_event_%zu", program.c_str(), i - kTracepointPoolSize);
}

std::string StableSyscall(size_t i) { return kStableSyscalls[i % kNumStableSyscalls]; }

std::string FlakySyscall(size_t i) { return kFlakySyscalls[i % kNumFlakySyscalls]; }

}  // namespace depsurf
