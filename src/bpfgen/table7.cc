#include "src/bpfgen/table7.h"

namespace depsurf {

// Row encoding: {name, subsystem,
//   funcs{Σ, Ø, Δ, F, S, T, D}, structs{Σ, Ø}, fields{Σ, Ø, Δ},
//   tracepoints{Σ, Ø, Δ}, syscalls{Σ, Ø}}.
// Values follow Table 7 of the paper.
const std::vector<ProgramSpec>& Table7Programs() {
  static const std::vector<ProgramSpec> kPrograms = {
      {"tracee", "security", {67, 14, 16, 5, 14, 14, 2}, {98, 14}, {250, 53, 9},
       {13, 3, 4}, {446, 202}},
      {"klockstat", "cpu", {14, 3, 0, 0, 4, 0, 0}, {}, {}, {}, {}},
      {"vfsstat", "storage", {8, 0, 5, 0, 6, 1, 0}, {}, {}, {}, {}},
      {"biotop", "storage", {5, 2, 2, 3, 2, 0, 0}, {3, 0}, {7, 2, 1}, {2, 2, 0}, {}},
      {"cachestat", "memory", {5, 2, 2, 0, 1, 0, 0}, {}, {}, {2, 2, 1}, {}},
      {"fsdist", "storage", {5, 2, 1, 0, 2, 2, 0}, {}, {}, {}, {}},
      {"tcptracer", "network", {5, 0, 1, 0, 0, 3, 0}, {6, 0}, {14, 0, 0}, {}, {}},
      {"readahead", "memory", {4, 3, 1, 2, 3, 1, 1}, {2, 1}, {1, 1, 0}, {}, {}},
      {"fsslower", "storage", {4, 1, 0, 0, 2, 1, 0}, {5, 0}, {6, 0, 0}, {}, {}},
      {"filelife", "storage", {4, 0, 3, 0, 2, 0, 0}, {5, 1}, {6, 2, 0}, {}, {}},
      {"biostacks", "storage", {3, 1, 2, 2, 3, 0, 0}, {3, 0}, {5, 2, 0}, {2, 2, 0}, {}},
      {"tcpconnlat", "network", {3, 0, 0, 0, 0, 2, 0}, {4, 1}, {11, 1, 0}, {1, 1, 1}, {}},
      {"numamove", "memory", {2, 2, 0, 1, 0, 0, 0}, {}, {}, {}, {}},
      {"biosnoop", "storage", {2, 1, 1, 1, 2, 0, 0}, {3, 0}, {9, 2, 1}, {4, 1, 3}, {}},
      {"filetop", "storage", {2, 0, 0, 0, 2, 0, 0}, {6, 0}, {10, 0, 0}, {}, {}},
      {"tcpsynbl", "network", {2, 0, 0, 0, 0, 2, 0}, {1, 0}, {2, 0, 0}, {}, {}},
      {"tcpconnect", "network", {2, 0, 0, 0, 0, 1, 0}, {3, 0}, {8, 0, 0}, {}, {}},
      {"bindsnoop", "network", {2, 0, 0, 0, 0, 0, 0}, {5, 0}, {14, 4, 1}, {}, {}},
      {"tcptop", "network", {2, 0, 0, 0, 0, 0, 0}, {3, 0}, {9, 0, 0}, {}, {}},
      {"oomkill", "memory", {1, 0, 1, 0, 1, 1, 0}, {3, 1}, {4, 2, 0}, {}, {}},
      {"capable", "security", {1, 0, 1, 0, 1, 1, 0}, {}, {}, {}, {}},
      {"tcprtt", "network", {1, 0, 1, 0, 0, 1, 0}, {6, 0}, {12, 0, 0}, {}, {}},
      {"mdflush", "storage", {1, 0, 1, 0, 0, 1, 0}, {3, 0}, {4, 2, 0}, {}, {}},
      {"solisten", "network", {1, 0, 0, 0, 1, 0, 0}, {7, 0}, {8, 0, 0}, {}, {}},
      {"slabratetop", "memory", {1, 0, 0, 0, 0, 0, 0}, {1, 0}, {2, 0, 1}, {}, {}},
      {"memleak", "memory", {}, {11, 9}, {17, 14, 0}, {10, 4, 7}, {}},
      {"tcppktlat", "network", {}, {1, 1}, {12, 12, 0}, {3, 3, 3}, {}},
      {"mountsnoop", "storage", {}, {17, 1}, {6, 0, 0}, {}, {2, 0}},
      {"runqlat", "cpu", {}, {5, 0}, {11, 3, 1}, {3, 0, 3}, {}},
      {"tcpstates", "network", {}, {4, 1}, {13, 7, 1}, {1, 1, 1}, {}},
      {"runqlen", "cpu", {}, {4, 0}, {5, 0, 0}, {}, {}},
      {"biolatency", "storage", {}, {3, 0}, {7, 2, 1}, {3, 0, 3}, {}},
      {"bitesize", "storage", {}, {3, 0}, {6, 2, 0}, {1, 0, 1}, {}},
      {"sigsnoop", "cpu", {}, {3, 0}, {5, 0, 0}, {1, 0, 1}, {3, 0}},
      {"execsnoop", "cpu", {}, {3, 0}, {4, 0, 0}, {}, {1, 0}},
      {"biopattern", "storage", {}, {2, 2}, {6, 6, 0}, {1, 0, 1}, {}},
      {"tcplife", "network", {}, {2, 1}, {12, 10, 1}, {1, 1, 1}, {}},
      {"syscount", "cpu", {}, {2, 0}, {4, 0, 0}, {2, 0, 0}, {}},
      {"statsnoop", "storage", {}, {2, 0}, {2, 0, 0}, {}, {5, 4}},
      {"opensnoop", "storage", {}, {2, 0}, {2, 0, 0}, {}, {2, 1}},
      {"futexctn", "cpu", {}, {2, 0}, {2, 0, 0}, {}, {1, 0}},
      {"profile", "cpu", {}, {1, 1}, {1, 1, 1}, {}, {}},
      {"llcstat", "cpu", {}, {1, 1}, {1, 1, 0}, {}, {}},
      {"offcputime", "cpu", {}, {1, 0}, {6, 2, 0}, {1, 0, 1}, {}},
      {"runqslower", "cpu", {}, {1, 0}, {5, 2, 0}, {3, 0, 3}, {}},
      {"cpudist", "cpu", {}, {1, 0}, {5, 2, 0}, {1, 0, 1}, {}},
      {"wakeuptime", "cpu", {}, {1, 0}, {4, 0, 0}, {2, 0, 2}, {}},
      {"exitsnoop", "cpu", {}, {1, 0}, {4, 0, 0}, {1, 0, 0}, {}},
      {"hardirqs", "cpu", {}, {1, 0}, {1, 0, 0}, {2, 0, 0}, {}},
      {"drsnoop", "memory", {}, {}, {}, {2, 0, 1}, {}},
      {"softirqs", "cpu", {}, {}, {}, {2, 0, 0}, {}},
      {"cpufreq", "cpu", {}, {}, {}, {1, 0, 0}, {}},
      {"syncsnoop", "storage", {}, {}, {}, {}, {6, 1}},
  };
  return kPrograms;
}

}  // namespace depsurf
