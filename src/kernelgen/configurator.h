// Assembles the complete configured source model for one kernel build:
// background population (evolution) + scripted constructs, projected through
// the architecture/flavor configuration (presence changes, rare definition
// changes, per-arch syscall table, pt_regs layout).
#ifndef DEPSURF_SRC_KERNELGEN_CONFIGURATOR_H_
#define DEPSURF_SRC_KERNELGEN_CONFIGURATOR_H_

#include <memory>
#include <vector>

#include "src/kernelgen/evolution.h"
#include "src/kernelgen/scripted.h"
#include "src/kernelgen/syscalls.h"
#include "src/kmodel/build_spec.h"
#include "src/util/error.h"

namespace depsurf {

// Everything the compiler simulator needs to "build" one image.
struct ConfiguredKernel {
  BuildSpec build;
  std::vector<FuncSpec> funcs;  // inline hints resolved per arch
  std::vector<StructSpec> structs;
  std::vector<TracepointSpec> tracepoints;
  std::vector<SyscallSpec> syscalls;
  uint32_t compat_syscalls = 0;
  uint32_t config_options = 0;
  StructSpec pt_regs;
};

// pt_regs definition for an architecture (the register-layout dependency).
StructSpec PtRegsFor(Arch arch);

class KernelModel {
 public:
  // `catalog` is moved in; combine curated + profile constructs before
  // construction.
  KernelModel(uint64_t seed, double scale, ScriptedCatalog catalog);

  const EvolutionModel& evolution() const { return evolution_; }
  const ScriptedCatalog& catalog() const { return catalog_; }

  // Fails if the version is not one of the 17 study versions.
  Result<ConfiguredKernel> Configure(const BuildSpec& build) const;

 private:
  bool RemovedByConfig(uint64_t key, uint32_t removed_count, uint32_t baseline, bool driver_bias,
                       bool is_driver, uint64_t salt) const;

  uint64_t seed_;
  double scale_;
  EvolutionModel evolution_;
  ScriptedCatalog catalog_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_CONFIGURATOR_H_
