#include "src/kernelgen/image_builder.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/btf/btf_codec.h"
#include "src/dwarf/dwarf_codec.h"
#include "src/elf/elf_writer.h"
#include "src/kernelgen/helpers.h"
#include "src/kernelgen/syscalls.h"
#include "src/kmodel/type_lang.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Deduplicating string pool living at a fixed virtual address.
class StringPool {
 public:
  StringPool(uint64_t base, Endian endian) : base_(base), writer_(endian) {}

  uint64_t Intern(const std::string& s) {
    auto it = addrs_.find(s);
    if (it != addrs_.end()) {
      return it->second;
    }
    uint64_t addr = base_ + writer_.size();
    writer_.WriteCString(s);
    addrs_[s] = addr;
    return addr;
  }

  std::vector<uint8_t> TakeBytes() { return writer_.TakeBytes(); }

 private:
  uint64_t base_;
  ByteWriter writer_;
  std::map<std::string, uint64_t> addrs_;
};

}  // namespace

Result<std::vector<uint8_t>> BuildKernelImage(const CompiledImage& image) {
  obs::ScopedSpan span("kernelgen.build_image");
  span.AddAttr("build", image.kernel.build.Label());
  const ConfiguredKernel& kernel = image.kernel;
  const BuildSpec& build = kernel.build;
  const ElfIdent ident = ElfIdentFor(build.arch);
  const int ptr = ident.pointer_size();
  const Endian endian = ident.endian;

  // ---- Address layout. Functions got addresses from the compiler; find
  // the top and place data regions above it.
  uint64_t text_base = ident.klass == ElfClass::k32 ? 0xc0008000ull : 0xffffffff81000000ull;
  uint64_t top = text_base;
  for (const CompiledFunction& func : image.funcs) {
    for (const CompiledInstance& inst : func.instances) {
      top = std::max(top, inst.address + 256);
    }
  }
  // Extra symbols (syscall stubs, tracing funcs) are allocated from here.
  uint64_t stub_cursor = (top + 0xfff) & ~uint64_t{0xfff};

  ElfWriter writer(ident);

  // ---- BTF: structs (including tracepoint event structs) and functions.
  TypeGraph graph;
  TypeLowering lowering(graph, ptr, ptr == 4 ? 4 : 8);
  for (const StructSpec& spec : kernel.structs) {
    auto lowered = lowering.DefineStruct(spec);
    if (!lowered.ok()) {
      return lowered.TakeError();
    }
  }
  auto lower_func = [&](const std::string& name, const TypeStr& ret,
                        const std::vector<ParamSpec>& params) -> Result<BtfTypeId> {
    DEPSURF_ASSIGN_OR_RETURN(ret_id, lowering.Lower(ret));
    std::vector<BtfParam> btf_params;
    btf_params.reserve(params.size());
    for (const ParamSpec& p : params) {
      DEPSURF_ASSIGN_OR_RETURN(type_id, lowering.Lower(p.type));
      btf_params.push_back(BtfParam{p.name, type_id});
    }
    BtfTypeId proto = graph.FuncProto(ret_id, std::move(btf_params));
    return graph.Func(name, proto);
  };
  for (const CompiledFunction& func : image.funcs) {
    DEPSURF_ASSIGN_OR_RETURN(ignored,
                             lower_func(func.spec.name, func.spec.return_type,
                                        func.spec.params));
    (void)ignored;
  }

  // Tracepoints: one event struct + tracing function per class.
  std::set<std::string> classes_done;
  std::map<std::string, uint64_t> extra_symbols;  // name -> address
  auto alloc_stub = [&](const std::string& name) {
    auto it = extra_symbols.find(name);
    if (it != extra_symbols.end()) {
      return it->second;
    }
    stub_cursor += 64;
    extra_symbols[name] = stub_cursor;
    return stub_cursor;
  };
  for (const TracepointSpec& tp : kernel.tracepoints) {
    if (!classes_done.insert(tp.class_name).second) {
      continue;
    }
    StructSpec event_struct;
    event_struct.name = std::string(kTraceStructPrefix) + tp.class_name;
    event_struct.fields.push_back({"ent", "struct trace_entry"});
    for (const FieldSpec& field : tp.event_fields) {
      event_struct.fields.push_back(field);
    }
    auto lowered = lowering.DefineStruct(event_struct);
    if (!lowered.ok()) {
      return lowered.TakeError();
    }
    std::vector<ParamSpec> params = {{"__data", "void *"}};
    params.insert(params.end(), tp.func_params.begin(), tp.func_params.end());
    DEPSURF_ASSIGN_OR_RETURN(ignored,
                             lower_func(std::string(kTraceFuncPrefix) + tp.class_name, "void",
                                        params));
    (void)ignored;
  }

  // ---- DWARF: one CU per translation unit.
  DwarfDocument dwarf;
  std::map<std::string, uint32_t> cu_by_file;
  auto cu_for = [&](const std::string& file) {
    auto it = cu_by_file.find(file);
    if (it != cu_by_file.end()) {
      return it->second;
    }
    uint32_t cu = dwarf.AddDie(DwTag::kCompileUnit, 0);
    dwarf.SetString(cu, DwAttr::kName, file);
    cu_by_file[file] = cu;
    return cu;
  };
  // Pass 1: create subprogram DIEs.
  std::map<std::string, uint32_t> die_by_file_func;  // "file:func" -> DIE
  struct PendingSites {
    uint32_t die;
    const CompiledInstance* inst;
  };
  std::vector<PendingSites> pending;
  for (const CompiledFunction& func : image.funcs) {
    for (const CompiledInstance& inst : func.instances) {
      uint32_t cu = cu_for(inst.tu_file);
      uint32_t die = dwarf.AddDie(DwTag::kSubprogram, cu);
      dwarf.SetString(die, DwAttr::kName, func.spec.name);
      dwarf.SetString(die, DwAttr::kDeclFile, func.spec.decl_file);
      dwarf.SetNumber(die, DwAttr::kDeclLine, func.spec.decl_line);
      if (inst.external) {
        dwarf.SetFlag(die, DwAttr::kExternal);
      }
      if (inst.inline_attr != DwInl::kNotInlined) {
        dwarf.SetNumber(die, DwAttr::kInline, static_cast<uint64_t>(inst.inline_attr));
      }
      if (inst.HasCode()) {
        dwarf.SetNumber(die, DwAttr::kLowPc, inst.address);
      }
      for (const ParamSpec& param : func.spec.params) {
        uint32_t pdie = dwarf.AddDie(DwTag::kFormalParameter, die);
        dwarf.SetString(pdie, DwAttr::kName, param.name);
      }
      // First instance wins the file:func slot (callers reference by name).
      die_by_file_func.emplace(inst.tu_file + ":" + func.spec.name, die);
      die_by_file_func.emplace(func.spec.decl_file + ":" + func.spec.name, die);
      pending.push_back(PendingSites{die, &inst});
    }
  }
  // Pass 2: materialize inline/call sites under the caller subprograms.
  auto find_caller = [&](const std::string& caller) -> uint32_t {
    auto it = die_by_file_func.find(caller);
    if (it != die_by_file_func.end()) {
      return it->second;
    }
    // Fall back to a name-only match (the caller may live in another TU).
    size_t colon = caller.find(':');
    if (colon == std::string::npos) {
      return 0;
    }
    std::string name = caller.substr(colon + 1);
    for (const auto& [key, die] : die_by_file_func) {
      size_t k = key.find(':');
      if (k != std::string::npos && key.compare(k + 1, std::string::npos, name) == 0) {
        return die;
      }
    }
    return 0;
  };
  for (const PendingSites& p : pending) {
    for (const std::string& caller : p.inst->inline_callers) {
      uint32_t caller_die = find_caller(caller);
      if (caller_die == 0) {
        continue;  // caller dropped by configuration
      }
      uint32_t site = dwarf.AddDie(DwTag::kInlinedSubroutine, caller_die);
      dwarf.SetNumber(site, DwAttr::kAbstractOrigin, p.die);
    }
    for (const std::string& caller : p.inst->call_callers) {
      uint32_t caller_die = find_caller(caller);
      if (caller_die == 0) {
        continue;
      }
      uint32_t site = dwarf.AddDie(DwTag::kCallSite, caller_die);
      dwarf.SetNumber(site, DwAttr::kCallOrigin, p.die);
    }
  }

  // ---- Symbols for compiled functions.
  uint64_t data_base = ((stub_cursor + 0x200000) + 0xffff) & ~uint64_t{0xffff};
  // .text covers [text_base, data_base).
  // Function address resolution goes through the symbol table, never the
  // section body, so .text carries no bytes.
  uint32_t text_idx = writer.AddSection(".text", SectionType::kNobits, {}, text_base,
                                        kShfAlloc | kShfExecinstr);
  std::set<std::string> symbol_names_emitted;
  for (const CompiledFunction& func : image.funcs) {
    for (const CompiledInstance& inst : func.instances) {
      if (!inst.HasCode() || inst.symbol_name.empty()) {
        continue;
      }
      ElfSymbol sym;
      sym.name = inst.symbol_name;
      sym.value = inst.address;
      sym.size = 64;
      sym.bind = inst.external ? SymBind::kGlobal : SymBind::kLocal;
      sym.type = SymType::kFunc;
      sym.shndx = static_cast<uint16_t>(text_idx);
      writer.AddSymbol(sym);
      symbol_names_emitted.insert(inst.symbol_name);
    }
  }

  // ---- Tracepoint machinery symbols and records.
  uint64_t str_base = data_base;
  StringPool strings(str_base, endian);
  struct TracepointRecord {
    uint64_t event_name;
    uint64_t class_name;
    uint64_t struct_name;
    uint64_t fmt;
    uint64_t func_addr;
  };
  std::vector<TracepointRecord> records;
  for (const TracepointSpec& tp : kernel.tracepoints) {
    std::string func_name = std::string(kTraceFuncPrefix) + tp.class_name;
    uint64_t func_addr = alloc_stub(func_name);
    records.push_back(TracepointRecord{
        strings.Intern(tp.event_name), strings.Intern(tp.class_name),
        strings.Intern(std::string(kTraceStructPrefix) + tp.class_name),
        strings.Intern(tp.fmt), func_addr});
  }

  // ---- Syscall table and entry stubs.
  const char* prefix = SyscallSymbolPrefix(build.arch);
  uint64_t ni_addr = alloc_stub("sys_ni_syscall");
  int max_nr = -1;
  for (const SyscallSpec& spec : kernel.syscalls) {
    max_nr = std::max(max_nr, spec.nr);
  }
  std::vector<uint64_t> slots(static_cast<size_t>(max_nr + 1), ni_addr);
  for (const SyscallSpec& spec : kernel.syscalls) {
    std::string stub = prefix + spec.name;
    // Scripted functions may already define the stub (e.g. __x64_sys_fsync).
    uint64_t addr;
    if (symbol_names_emitted.count(stub) != 0) {
      addr = 0;  // resolved below via existing symbol
      for (const CompiledFunction& func : image.funcs) {
        for (const CompiledInstance& inst : func.instances) {
          if (inst.symbol_name == stub) {
            addr = inst.address;
          }
        }
      }
      if (addr == 0) {
        addr = alloc_stub(stub);
      }
    } else {
      addr = alloc_stub(stub);
    }
    slots[static_cast<size_t>(spec.nr)] = addr;
    if (spec.has_compat && CompatSyscallsTraceable(build.arch)) {
      // Compat entry points are only materialized where traceable; their
      // absence elsewhere is the paper's 32-bit blind spot.
      alloc_stub(std::string("__compat_sys_") + spec.name);
    }
  }

  // Emit extra symbols (stubs + tracing functions).
  for (const auto& [name, addr] : extra_symbols) {
    ElfSymbol sym;
    sym.name = name;
    sym.value = addr;
    sym.size = 64;
    sym.bind = SymBind::kGlobal;
    sym.type = SymType::kFunc;
    sym.shndx = static_cast<uint16_t>(text_idx);
    writer.AddSymbol(sym);
  }

  // ---- Data sections. Layout: strings | records | ftrace ptr array |
  // syscall table, at increasing addresses.
  std::vector<uint8_t> string_bytes = strings.TakeBytes();
  uint64_t records_base = (str_base + string_bytes.size() + 63) & ~uint64_t{63};
  uint64_t record_size = static_cast<uint64_t>(5 * ptr);
  uint64_t ftrace_base = (records_base + records.size() * record_size + 63) & ~uint64_t{63};
  uint64_t ftrace_size = records.size() * static_cast<uint64_t>(ptr);
  uint64_t syscall_base = (ftrace_base + ftrace_size + 63) & ~uint64_t{63};

  ByteWriter record_bytes(endian);
  for (const TracepointRecord& rec : records) {
    record_bytes.WriteAddr(rec.event_name, ptr);
    record_bytes.WriteAddr(rec.class_name, ptr);
    record_bytes.WriteAddr(rec.struct_name, ptr);
    record_bytes.WriteAddr(rec.fmt, ptr);
    record_bytes.WriteAddr(rec.func_addr, ptr);
  }
  ByteWriter ftrace_bytes(endian);
  for (size_t i = 0; i < records.size(); ++i) {
    ftrace_bytes.WriteAddr(records_base + i * record_size, ptr);
  }
  ByteWriter syscall_bytes(endian);
  for (uint64_t slot : slots) {
    syscall_bytes.WriteAddr(slot, ptr);
  }

  writer.AddSection(".tracepoint_str", SectionType::kProgbits, std::move(string_bytes), str_base,
                    kShfAlloc);
  writer.AddSection(".tracepoint_rec", SectionType::kProgbits, record_bytes.TakeBytes(),
                    records_base, kShfAlloc);
  uint32_t ftrace_idx = writer.AddSection(kSectionFtraceEvents, SectionType::kProgbits,
                                          ftrace_bytes.TakeBytes(), ftrace_base, kShfAlloc);
  uint32_t rodata_idx = writer.AddSection(".rodata", SectionType::kProgbits,
                                          syscall_bytes.TakeBytes(), syscall_base, kShfAlloc);

  ElfSymbol start_sym;
  start_sym.name = kSymStartFtrace;
  start_sym.value = ftrace_base;
  start_sym.bind = SymBind::kGlobal;
  start_sym.type = SymType::kObject;
  start_sym.shndx = static_cast<uint16_t>(ftrace_idx);
  writer.AddSymbol(start_sym);
  ElfSymbol stop_sym = start_sym;
  stop_sym.name = kSymStopFtrace;
  stop_sym.value = ftrace_base + ftrace_size;
  writer.AddSymbol(stop_sym);
  ElfSymbol table_sym;
  table_sym.name = kSymSyscallTable;
  table_sym.value = syscall_base;
  table_sym.size = slots.size() * static_cast<uint64_t>(ptr);
  table_sym.bind = SymBind::kGlobal;
  table_sym.type = SymType::kObject;
  table_sym.shndx = static_cast<uint16_t>(rodata_idx);
  writer.AddSymbol(table_sym);

  // ---- linux_banner: the analyzer recovers version/flavor/compiler from
  // this string, exactly like reading a real image's banner.
  std::string banner = StrFormat(
      "Linux version %d.%d.0-26-%s (buildd@lcy02) (gcc (Ubuntu) %d.4.0) #26-Ubuntu SMP\n",
      build.version.major, build.version.minor, FlavorName(build.flavor), build.gcc_major);
  uint64_t banner_base = syscall_base + 0x10000;
  ByteWriter banner_bytes(endian);
  banner_bytes.WriteCString(banner);
  uint32_t banner_idx = writer.AddSection(".rodata.banner", SectionType::kProgbits,
                                          banner_bytes.TakeBytes(), banner_base, kShfAlloc);
  ElfSymbol banner_sym;
  banner_sym.name = "linux_banner";
  banner_sym.value = banner_base;
  banner_sym.size = banner.size() + 1;
  banner_sym.bind = SymBind::kGlobal;
  banner_sym.type = SymType::kObject;
  banner_sym.shndx = static_cast<uint16_t>(banner_idx);
  writer.AddSymbol(banner_sym);

  // ---- .BTF_ids: the kfunc id set (as real kernels register kfuncs with
  // the verifier via BTF id sets).
  {
    ByteWriter ids(endian);
    for (const CompiledFunction& func : image.funcs) {
      if (!func.spec.is_kfunc) {
        continue;
      }
      if (auto id = graph.FindFunc(func.spec.name); id.has_value()) {
        ids.WriteU32(*id);
      }
    }
    writer.AddSection(".BTF_ids", SectionType::kProgbits, ids.TakeBytes());
  }

  // ---- .bpf_helpers: the BPF helper ids this kernel version exports
  // (stand-in for the real kernel's bpf_tracing_func_proto switch). The
  // surface extractor reads this into helpers(); the analyzer checks call
  // sites against it.
  {
    ByteWriter ids(endian);
    for (uint32_t id : AvailableHelperIds(build.version)) {
      ids.WriteU32(id);
    }
    writer.AddSection(kBpfHelpersSection, SectionType::kProgbits, ids.TakeBytes());
  }

  // ---- Embedded configuration summary (like Ubuntu's /boot config or the
  // IKCONFIG section): the analyzer reads option counts from here.
  {
    ByteWriter config_bytes(endian);
    std::string config = StrFormat(
        "# depsurf synthetic kernel configuration\nCONFIG_OPTIONS=%u\nCONFIG_ARCH=%s\n"
        "CONFIG_COMPAT_TRACEABLE=%c\n",
        kernel.config_options, ArchName(build.arch),
        CompatSyscallsTraceable(build.arch) ? 'y' : 'n');
    config_bytes.WriteString(config);
    writer.AddSection(".config", SectionType::kProgbits, config_bytes.TakeBytes());
  }

  // ---- Debug sections.
  DwarfSections dwarf_sections = EncodeDwarf(dwarf, endian);
  const uint64_t dwarf_abbrev_bytes = dwarf_sections.abbrev.size();
  const uint64_t dwarf_info_bytes = dwarf_sections.info.size();
  writer.AddSection(kSectionDwarfAbbrev, SectionType::kProgbits,
                    std::move(dwarf_sections.abbrev));
  writer.AddSection(kSectionDwarfInfo, SectionType::kProgbits, std::move(dwarf_sections.info));
  std::vector<uint8_t> btf_bytes = EncodeBtf(graph, endian);
  const uint64_t btf_section_bytes = btf_bytes.size();
  writer.AddSection(kSectionBtf, SectionType::kProgbits, std::move(btf_bytes));

  auto finished = writer.Finish();
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("kernelgen.images_built");
  metrics.Incr("kernelgen.btf_bytes", btf_section_bytes);
  metrics.Incr("kernelgen.dwarf_bytes", dwarf_abbrev_bytes + dwarf_info_bytes);
  span.AddAttr("btf_bytes", btf_section_bytes);
  span.AddAttr("dwarf_abbrev_bytes", dwarf_abbrev_bytes);
  span.AddAttr("dwarf_info_bytes", dwarf_info_bytes);
  if (finished.ok()) {
    metrics.Incr("kernelgen.image_bytes", finished->size());
    metrics.GetHistogram("kernelgen.image_bytes_hist")->Record(finished->size());
    span.AddAttr("image_bytes", static_cast<uint64_t>(finished->size()));
  }
  return finished;
}

}  // namespace depsurf
