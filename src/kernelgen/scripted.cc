#include "src/kernelgen/scripted.h"

#include "src/util/prng.h"

namespace depsurf {

namespace {

constexpr KernelVersion kV44{4, 4};
constexpr KernelVersion kV415{4, 15};
constexpr KernelVersion kV418{4, 18};
constexpr KernelVersion kV50{5, 0};
constexpr KernelVersion kV58{5, 8};
constexpr KernelVersion kV511{5, 11};
constexpr KernelVersion kV513{5, 13};
constexpr KernelVersion kV515{5, 15};
constexpr KernelVersion kV516{5, 16};
constexpr KernelVersion kV518{5, 18};
constexpr KernelVersion kV62{6, 2};
constexpr KernelVersion kV65{6, 5};
constexpr KernelVersion kEnd{999, 0};

FuncSpec MakeFunc(std::string name, TypeStr ret, std::vector<ParamSpec> params, std::string file,
                  uint32_t line, Linkage linkage = Linkage::kGlobal,
                  InlineHint hint = InlineHint::kAuto) {
  FuncSpec f;
  f.name = std::move(name);
  f.return_type = std::move(ret);
  f.params = std::move(params);
  f.decl_file = std::move(file);
  f.decl_line = line;
  f.linkage = linkage;
  f.inline_hint = hint;
  return f;
}

// Field-name vocabulary for synthesized profile structs.
constexpr const char* kFieldVocab[] = {"flags", "state", "count", "len",  "mode",
                                       "pid",   "ts",    "ret",   "addr", "size"};

}  // namespace

const FuncSpec* ScriptedFunc::SpecAt(KernelVersion v) const {
  for (const Stage& stage : stages) {
    if (stage.range.Contains(v)) {
      return &stage.spec;
    }
  }
  return nullptr;
}

const StructSpec* ScriptedStruct::SpecAt(KernelVersion v) const {
  for (const Stage& stage : stages) {
    if (stage.range.Contains(v)) {
      return &stage.spec;
    }
  }
  return nullptr;
}

const TracepointSpec* ScriptedTracepoint::SpecAt(KernelVersion v) const {
  for (const Stage& stage : stages) {
    if (stage.range.Contains(v)) {
      return &stage.spec;
    }
  }
  return nullptr;
}

ScriptedFunc& ScriptedCatalog::AddFunc(ScriptedFunc func) {
  funcs.push_back(std::move(func));
  return funcs.back();
}

ScriptedStruct& ScriptedCatalog::AddStruct(ScriptedStruct st) {
  structs.push_back(std::move(st));
  return structs.back();
}

ScriptedTracepoint& ScriptedCatalog::AddTracepoint(ScriptedTracepoint tp) {
  tracepoints.push_back(std::move(tp));
  return tracepoints.back();
}

void ScriptedCatalog::Merge(ScriptedCatalog other) {
  for (ScriptedFunc& f : other.funcs) {
    funcs.push_back(std::move(f));
  }
  for (ScriptedStruct& s : other.structs) {
    structs.push_back(std::move(s));
  }
  for (ScriptedTracepoint& t : other.tracepoints) {
    tracepoints.push_back(std::move(t));
  }
}

const ScriptedFunc* ScriptedCatalog::FindFunc(const std::string& name, KernelVersion v) const {
  for (const ScriptedFunc& f : funcs) {
    const FuncSpec* spec = f.SpecAt(v);
    if (spec != nullptr && spec->name == name) {
      return &f;
    }
  }
  return nullptr;
}

void ScriptedCatalog::AddProfileFunc(const std::string& name, const MismatchProfile& profile) {
  // Profile functions share one translation unit and name their inline/call
  // hosts explicitly, so inline outcomes never depend on TU-mate synthesis.
  constexpr char kProfileTu[] = "kernel/bpf_targets.c";
  bool hosts_exist = false;
  for (const ScriptedFunc& f : funcs) {
    if (!f.stages.empty() && f.stages[0].spec.name == "bpf_probe_host_a") {
      hosts_exist = true;
      break;
    }
  }
  if (!hosts_exist) {
    for (const char* host : {"bpf_probe_host_a", "bpf_probe_host_b"}) {
      ScriptedFunc hf;
      FuncSpec spec;
      spec.name = host;
      spec.return_type = "void";
      spec.decl_file = kProfileTu;
      spec.decl_line = 10;
      spec.inline_hint = InlineHint::kNever;
      hf.stages.push_back({{kV44, kEnd}, std::move(spec)});
      funcs.push_back(std::move(hf));
    }
  }

  ScriptedFunc func;
  KernelVersion born = profile.absent ? kV58 : kV44;
  KernelVersion change_at = profile.absent ? kV515 : kV58;
  std::string file = kProfileTu;

  auto hint_for = [&](KernelVersion v) {
    if (profile.full_inline && v >= kV513) {
      return InlineHint::kForceFull;
    }
    if (profile.selective) {
      return InlineHint::kForceSelective;
    }
    return InlineHint::kNever;
  };

  std::vector<ParamSpec> base_params = {{"p0", "struct task_struct *"}, {"p1", "int"}};
  std::vector<ParamSpec> changed_params = base_params;
  changed_params.push_back({"p2", "unsigned long"});  // parameter added

  std::vector<VersionRange> ranges;
  if (profile.changed) {
    ranges.push_back({born, change_at});
    ranges.push_back({change_at, kEnd});
  } else {
    ranges.push_back({born, kEnd});
  }
  for (const VersionRange& range : ranges) {
    // A range may straddle the v5.13 inline breakpoint; split there.
    std::vector<VersionRange> pieces;
    if (profile.full_inline && range.from < kV513 && range.until > kV513) {
      pieces.push_back({range.from, kV513});
      pieces.push_back({kV513, range.until});
    } else {
      pieces.push_back(range);
    }
    for (const VersionRange& piece : pieces) {
      FuncSpec spec = MakeFunc(name, "int",
                               (profile.changed && piece.from >= change_at) ? changed_params
                                                                            : base_params,
                               file, 100);
      spec.inline_hint = hint_for(piece.from);
      spec.callers = {std::string(kProfileTu) + ":bpf_probe_host_a",
                      std::string(kProfileTu) + ":bpf_probe_host_b"};
      if (profile.duplicated) {
        spec.linkage = Linkage::kStatic;
        spec.defined_in_header = true;
        spec.decl_file = "include/linux/" + name + ".h";
      }
      func.stages.push_back({piece, std::move(spec)});
    }
  }
  if (profile.transformed) {
    func.forced_transform = "isra";
    func.forced_transform_range = VersionRange{born, kEnd};
    func.forced_transform_min_gcc = 9;
  }
  AddFunc(std::move(func));
}

void ScriptedCatalog::AddProfileStruct(const std::string& name, int stable_fields,
                                       int absent_fields, int changed_fields,
                                       bool struct_absent) {
  auto make = [&](bool with_absent, bool post_change) {
    StructSpec spec;
    spec.name = name;
    for (int i = 0; i < stable_fields; ++i) {
      spec.fields.push_back({std::string(kFieldVocab[i % 10]) + (i >= 10 ? std::to_string(i) : ""),
                             "unsigned long"});
    }
    for (int i = 0; i < changed_fields; ++i) {
      // Widened at v5.8: int -> long is silently compatible (stray read).
      spec.fields.push_back({"w_" + std::string(kFieldVocab[i % 10]),
                             post_change ? "long" : "int"});
    }
    if (with_absent) {
      for (int i = 0; i < absent_fields; ++i) {
        spec.fields.push_back({"new_" + std::string(kFieldVocab[i % 10]), "u64"});
      }
    }
    return spec;
  };
  ScriptedStruct st;
  KernelVersion born = struct_absent ? kV58 : kV44;
  if (absent_fields > 0 || changed_fields > 0) {
    KernelVersion change_at = struct_absent ? kV515 : kV58;
    st.stages.push_back({{born, change_at}, make(false, false)});
    st.stages.push_back({{change_at, kEnd}, make(true, true)});
  } else {
    st.stages.push_back({{born, kEnd}, make(true, false)});
  }
  AddStruct(std::move(st));
}

void ScriptedCatalog::AddProfileTracepoint(const std::string& name, bool absent, bool changed) {
  auto make = [&](bool post_change) {
    TracepointSpec spec;
    spec.event_name = name;
    spec.class_name = name + "_class";
    spec.func_params = {{"arg0", "struct task_struct *"}};
    spec.event_fields = {{"pid", "pid_t"},
                         {post_change ? "value_nsec" : "value_usec", "u64"}};
    spec.fmt = "\"pid=%d\", REC->pid";
    return spec;
  };
  ScriptedTracepoint tp;
  KernelVersion born = absent ? kV58 : kV44;
  if (changed) {
    KernelVersion change_at = absent ? kV515 : kV58;
    tp.stages.push_back({{born, change_at}, make(false)});
    tp.stages.push_back({{change_at, kEnd}, make(true)});
  } else {
    tp.stages.push_back({{born, kEnd}, make(false)});
  }
  AddTracepoint(std::move(tp));
}

namespace {

void AddBlockLayer(ScriptedCatalog& cat) {
  // blk_mq_start_request: the one biotop dependency with no mismatch.
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("blk_mq_start_request", "void", {{"rq", "struct request *"}},
                             "block/blk-mq.c", 701, Linkage::kGlobal, InlineHint::kNever);
    f.stages.push_back({{kV44, kEnd}, spec});
    cat.AddFunc(std::move(f));
  }
  // blk_account_io_start / done: the two-year biotop saga (b5af37a, be6bfe3).
  for (const char* name : {"blk_account_io_start", "blk_account_io_done"}) {
    ScriptedFunc f;
    bool is_start = std::string(name) == "blk_account_io_start";
    FuncSpec v44 = MakeFunc(name, "void",
                            is_start ? std::vector<ParamSpec>{{"rq", "struct request *"},
                                                              {"new_io", "bool"}}
                                     : std::vector<ParamSpec>{{"rq", "struct request *"},
                                                              {"now", "u64"}},
                            "block/blk-core.c", 1201, Linkage::kGlobal, InlineHint::kNever);
    // v5.8 (b5af37a): parameter removed.
    FuncSpec v58 = MakeFunc(name, "void", {{"rq", "struct request *"}}, "block/blk-core.c", 1188,
                            Linkage::kGlobal, InlineHint::kForceSelective);
    // v5.16 (be6bfe3): static inline wrapper; fully inlined everywhere.
    FuncSpec v516 = MakeFunc(name, "void", {{"rq", "struct request *"}}, "block/blk.h", 330,
                             Linkage::kStatic, InlineHint::kForceFull);
    v516.callers = {"block/blk-mq.c:blk_mq_submit_bio", "block/blk-mq.c:blk_mq_end_request"};
    f.stages.push_back({{kV44, kV58}, std::move(v44)});
    f.stages.push_back({{kV58, kV516}, std::move(v58)});
    f.stages.push_back({{kV516, kEnd}, std::move(v516)});
    cat.AddFunc(std::move(f));
  }
  // __blk_account_io_{start,done}: the v5.16 out-of-line workers. The start
  // one "happened to be inlined by the compiler" (the failed first fix).
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("__blk_account_io_start", "void", {{"rq", "struct request *"}},
                             "block/blk-core.c", 1130, Linkage::kGlobal, InlineHint::kForceFull);
    spec.callers = {"block/blk-mq.c:blk_mq_submit_bio"};
    f.stages.push_back({{kV516, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("__blk_account_io_done", "void",
                             {{"rq", "struct request *"}, {"now", "u64"}}, "block/blk-core.c",
                             1118, Linkage::kGlobal, InlineHint::kNever);
    spec.callers = {"block/blk-mq.c:blk_mq_end_request", "block/blk-flush.c:blk_flush_complete"};
    f.stages.push_back({{kV516, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  // Callers referenced above must exist as real functions.
  for (const char* name : {"blk_mq_submit_bio", "blk_mq_end_request", "blk_flush_complete"}) {
    ScriptedFunc f;
    std::string file = std::string(name) == "blk_flush_complete" ? "block/blk-flush.c"
                                                                 : "block/blk-mq.c";
    f.stages.push_back({{kV44, kEnd}, MakeFunc(name, "void", {{"rq", "struct request *"}}, file,
                                               50, Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }

  // struct request: rq_disk replaced by request_queue::disk around v5.15/16;
  // cmd_flags became the blk_opf_t typedef in v5.19 (a silently-compatible
  // integer type change).
  {
    ScriptedStruct st;
    StructSpec old_spec;
    old_spec.name = "request";
    old_spec.fields = {{"q", "struct request_queue *"},   {"rq_disk", "struct gendisk *"},
                       {"bio", "struct bio *"},           {"start_time_ns", "u64"},
                       {"cmd_flags", "unsigned int"},     {"__sector", "sector_t"},
                       {"__data_len", "unsigned int"}};
    StructSpec mid_spec;
    mid_spec.name = "request";
    mid_spec.fields = {{"q", "struct request_queue *"},   {"part", "struct block_device *"},
                       {"bio", "struct bio *"},           {"start_time_ns", "u64"},
                       {"cmd_flags", "unsigned int"},     {"__sector", "sector_t"},
                       {"__data_len", "unsigned int"}};
    StructSpec new_spec = mid_spec;
    new_spec.fields[4] = {"cmd_flags", "blk_opf_t"};
    constexpr KernelVersion kV519{5, 19};
    st.stages.push_back({{kV44, kV516}, std::move(old_spec)});
    st.stages.push_back({{kV516, kV519}, std::move(mid_spec)});
    st.stages.push_back({{kV519, kEnd}, std::move(new_spec)});
    cat.AddStruct(std::move(st));
  }
  // struct request_queue: disk field added in v5.15 (coexists with
  // request::rq_disk in that one version).
  {
    ScriptedStruct st;
    StructSpec old_spec;
    old_spec.name = "request_queue";
    old_spec.fields = {{"queue_flags", "unsigned long"}, {"nr_requests", "unsigned long"}};
    StructSpec new_spec = old_spec;
    new_spec.fields.insert(new_spec.fields.begin(), {"disk", "struct gendisk *"});
    st.stages.push_back({{kV44, kV515}, std::move(old_spec)});
    st.stages.push_back({{kV515, kEnd}, std::move(new_spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "gendisk";
    spec.fields = {{"major", "int"}, {"first_minor", "int"}, {"minors", "int"},
                   {"disk_name", "char[32]"}};
    st.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "bio";
    spec.fields = {{"bi_flags", "unsigned short"}, {"bi_opf", "unsigned int"},
                   {"bi_size", "unsigned int"}};
    st.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }

  // Tracepoints: block_rq_issue/complete lost their request_queue argument
  // in v5.11 (a54895f); block_io_start/done were added in v6.5 (5a80bd0).
  for (const char* name : {"block_rq_issue", "block_rq_complete"}) {
    ScriptedTracepoint tp;
    TracepointSpec old_spec;
    old_spec.event_name = name;
    old_spec.class_name = "block_rq";
    old_spec.func_params = {{"q", "struct request_queue *"}, {"rq", "struct request *"}};
    old_spec.event_fields = {{"dev", "dev_t"}, {"sector", "sector_t"},
                             {"nr_sector", "unsigned int"}, {"rwbs", "char[8]"}};
    old_spec.fmt = "\"%d,%d %s %u\", MAJOR(REC->dev), MINOR(REC->dev), REC->rwbs, REC->nr_sector";
    TracepointSpec new_spec = old_spec;
    new_spec.func_params = {{"rq", "struct request *"}};
    tp.stages.push_back({{kV44, kV511}, std::move(old_spec)});
    tp.stages.push_back({{kV511, kEnd}, std::move(new_spec)});
    cat.AddTracepoint(std::move(tp));
  }
  for (const char* name : {"block_io_start", "block_io_done"}) {
    ScriptedTracepoint tp;
    TracepointSpec spec;
    spec.event_name = name;
    spec.class_name = "block_rq";
    spec.func_params = {{"rq", "struct request *"}};
    spec.event_fields = {{"dev", "dev_t"}, {"sector", "sector_t"},
                         {"nr_sector", "unsigned int"}, {"rwbs", "char[8]"}};
    spec.fmt = "\"%d,%d %s %u\", MAJOR(REC->dev), MINOR(REC->dev), REC->rwbs, REC->nr_sector";
    tp.stages.push_back({{kV65, kEnd}, std::move(spec)});
    cat.AddTracepoint(std::move(tp));
  }
}

void AddReadaheadLineage(ScriptedCatalog& cat) {
  // __do_page_cache_readahead: return type changed in v4.18 (c534aa3),
  // selectively inlined after the v5.8 refactor (2c68423), renamed to
  // do_page_cache_ra in v5.11 (8238287).
  {
    ScriptedFunc f;
    std::vector<ParamSpec> params = {{"mapping", "struct address_space *"},
                                     {"filp", "struct file *"},
                                     {"offset", "pgoff_t"},
                                     {"nr_to_read", "unsigned long"},
                                     {"lookahead_size", "unsigned long"}};
    f.stages.push_back({{kV44, kV418},
                        MakeFunc("__do_page_cache_readahead", "unsigned long", params,
                                 "mm/readahead.c", 152, Linkage::kGlobal, InlineHint::kNever)});
    f.stages.push_back({{kV418, kV58},
                        MakeFunc("__do_page_cache_readahead", "unsigned int", params,
                                 "mm/readahead.c", 156, Linkage::kGlobal, InlineHint::kNever)});
    FuncSpec selective = MakeFunc("__do_page_cache_readahead", "unsigned int", params,
                                  "mm/readahead.c", 160, Linkage::kGlobal,
                                  InlineHint::kForceSelective);
    selective.callers = {"mm/readahead.c:ondemand_readahead", "mm/filemap.c:do_sync_mmap_readahead"};
    f.stages.push_back({{kV58, kV511}, std::move(selective)});
    cat.AddFunc(std::move(f));
  }
  // do_page_cache_ra: the rename; made static (fully inlined) in v5.18
  // (56a4d67), replaced by page_cache_ra_order.
  {
    ScriptedFunc f;
    std::vector<ParamSpec> params = {{"ractl", "struct readahead_control *"},
                                     {"nr_to_read", "unsigned long"},
                                     {"lookahead_size", "unsigned long"}};
    FuncSpec selective = MakeFunc("do_page_cache_ra", "void", params, "mm/readahead.c", 247,
                                  Linkage::kGlobal, InlineHint::kForceSelective);
    selective.callers = {"mm/readahead.c:ondemand_readahead", "mm/filemap.c:do_sync_mmap_readahead"};
    FuncSpec full = MakeFunc("do_page_cache_ra", "void", params, "mm/readahead.c", 251,
                             Linkage::kStatic, InlineHint::kForceFull);
    full.callers = {"mm/readahead.c:ondemand_readahead", "mm/readahead.c:page_cache_ra_order"};
    f.stages.push_back({{kV511, kV518}, std::move(selective)});
    f.stages.push_back({{kV518, kEnd}, std::move(full)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;
    f.stages.push_back(
        {{kV518, kEnd},
         MakeFunc("page_cache_ra_order", "void",
                  {{"ractl", "struct readahead_control *"}, {"ra", "struct file_ra_state *"},
                   {"new_order", "unsigned int"}},
                  "mm/readahead.c", 491, Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // __page_cache_alloc: becomes a trivial wrapper of filemap_alloc_folio in
  // v5.16 (bb3c579) and is fully inlined; on !CONFIG_NUMA targets
  // (arm32/riscv) it is a static inline in a header: duplicated + inlined.
  {
    ScriptedFunc f;
    FuncSpec old_spec = MakeFunc("__page_cache_alloc", "struct page *", {{"gfp", "gfp_t"}},
                                 "mm/filemap.c", 971, Linkage::kGlobal, InlineHint::kNever);
    FuncSpec new_spec = MakeFunc("__page_cache_alloc", "struct page *", {{"gfp", "gfp_t"}},
                                 "include/linux/pagemap.h", 286, Linkage::kStatic,
                                 InlineHint::kForceFull);
    new_spec.callers = {"mm/readahead.c:ondemand_readahead", "mm/filemap.c:filemap_get_pages"};
    f.stages.push_back({{kV44, kV516}, std::move(old_spec)});
    f.stages.push_back({{kV516, kEnd}, std::move(new_spec)});
    f.arch_behavior[Arch::kArm32] =
        ArchBehavior{false, InlineHint::kForceFull, /*duplicate_per_tu=*/true};
    f.arch_behavior[Arch::kRiscv] =
        ArchBehavior{false, InlineHint::kForceFull, /*duplicate_per_tu=*/true};
    f.forced_transform = "constprop";
    f.forced_transform_range = VersionRange{kV50, kV516};
    f.forced_transform_min_gcc = 8;
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("filemap_alloc_folio", "struct folio *",
                             {{"gfp", "gfp_t"}, {"order", "unsigned int"}}, "mm/filemap.c", 958,
                             Linkage::kGlobal, InlineHint::kForceSelective);
    spec.callers = {"mm/filemap.c:filemap_get_pages", "mm/readahead.c:ondemand_readahead"};
    f.stages.push_back({{kV516, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  // Callers used above.
  for (const char* name : {"ondemand_readahead", "do_sync_mmap_readahead", "filemap_get_pages"}) {
    ScriptedFunc f;
    std::string file = std::string(name) == "ondemand_readahead" ? "mm/readahead.c"
                                                                 : "mm/filemap.c";
    f.stages.push_back({{kV44, kEnd}, MakeFunc(name, "void", {{"ractl", "void *"}}, file, 300,
                                               Linkage::kStatic, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // Supporting structs.
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "readahead_control";
    spec.fields = {{"file", "struct file *"}, {"mapping", "struct address_space *"},
                   {"_index", "pgoff_t"}, {"_nr_pages", "unsigned int"}};
    st.stages.push_back({{kV58, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "file_ra_state";
    spec.fields = {{"start", "pgoff_t"}, {"size", "unsigned int"}, {"async_size", "unsigned int"},
                   {"ra_pages", "unsigned int"}};
    st.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "folio";
    spec.fields = {{"flags", "unsigned long"}, {"private", "void *"}, {"_refcount", "int"}};
    st.stages.push_back({{kV516, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
}

void AddVfsAndMisc(ScriptedCatalog& cat) {
  // vfs_fsync: the artifact-appendix example of selective inline.
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("vfs_fsync", "int", {{"file", "struct file *"}, {"datasync", "int"}},
                             "fs/sync.c", 213, Linkage::kGlobal, InlineHint::kForceSelective);
    spec.callers = {"fs/sync.c:__x64_sys_fsync",      "fs/sync.c:__ia32_sys_fsync",
                    "fs/sync.c:__x64_sys_fdatasync",  "fs/sync.c:__ia32_sys_fdatasync",
                    "fs/aio.c:aio_fsync_work",        "fs/iomap/swapfile.c:iomap_swapfile_activate",
                    "drivers/block/loop.c:do_req_filebacked"};
    f.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  for (const char* name : {"__x64_sys_fsync", "__ia32_sys_fsync", "__x64_sys_fdatasync",
                           "__ia32_sys_fdatasync"}) {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kEnd}, MakeFunc(name, "long", {{"fd", "unsigned int"}},
                                               "fs/sync.c", 230, Linkage::kGlobal,
                                               InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  for (const char* name : {"aio_fsync_work", "iomap_swapfile_activate", "do_req_filebacked"}) {
    ScriptedFunc f;
    std::string file = std::string(name) == "aio_fsync_work" ? "fs/aio.c"
                       : std::string(name) == "iomap_swapfile_activate" ? "fs/iomap/swapfile.c"
                                                                        : "drivers/block/loop.c";
    f.stages.push_back({{kV44, kEnd}, MakeFunc(name, "int", {{"arg", "void *"}}, file, 80,
                                               Linkage::kStatic, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // do_unlinkat: char * became struct filename * in v4.15 (Listing 1).
  {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kV415},
                        MakeFunc("do_unlinkat", "int",
                                 {{"dfd", "int"}, {"pathname", "const char *"}}, "fs/namei.c",
                                 3970, Linkage::kGlobal, InlineHint::kNever)});
    f.stages.push_back({{kV415, kEnd},
                        MakeFunc("do_unlinkat", "int",
                                 {{"dfd", "int"}, {"name", "struct filename *"}}, "fs/namei.c",
                                 4080, Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // vfs_rename: six parameters folded into struct renamedata (9fe6145).
  {
    ScriptedFunc f;
    f.stages.push_back(
        {{kV44, kV513},
         MakeFunc("vfs_rename", "int",
                  {{"old_dir", "struct inode *"}, {"old_dentry", "struct dentry *"},
                   {"new_dir", "struct inode *"}, {"new_dentry", "struct dentry *"},
                   {"delegated_inode", "struct inode **"}, {"flags", "unsigned int"}},
                  "fs/namei.c", 4500, Linkage::kGlobal, InlineHint::kNever)});
    f.stages.push_back({{kV513, kEnd},
                        MakeFunc("vfs_rename", "int", {{"rd", "struct renamedata *"}},
                                 "fs/namei.c", 4620, Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // vfs_create: argument inserted at the front (6521f89) -> "reordered".
  {
    ScriptedFunc f;
    f.stages.push_back(
        {{kV44, kV513},
         MakeFunc("vfs_create", "int",
                  {{"dir", "struct inode *"}, {"dentry", "struct dentry *"},
                   {"mode", "umode_t"}, {"want_excl", "bool"}},
                  "fs/namei.c", 3050, Linkage::kGlobal, InlineHint::kNever)});
    f.stages.push_back(
        {{kV513, kEnd},
         MakeFunc("vfs_create", "int",
                  {{"mnt_userns", "struct user_namespace *"}, {"dir", "struct inode *"},
                   {"dentry", "struct dentry *"}, {"mode", "umode_t"}, {"want_excl", "bool"}},
                  "fs/namei.c", 3102, Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // account_idle_time: cputime_t -> u64 (18b43a9): parameter type change.
  {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kV415},
                        MakeFunc("account_idle_time", "void", {{"cputime", "cputime_t"}},
                                 "kernel/sched/cputime.c", 220, Linkage::kGlobal,
                                 InlineHint::kNever)});
    f.stages.push_back({{kV415, kEnd},
                        MakeFunc("account_idle_time", "void", {{"cputime", "u64"}},
                                 "kernel/sched/cputime.c", 236, Linkage::kGlobal,
                                 InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // get_order: the canonical duplicated header-defined static.
  {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc("get_order", "int", {{"size", "unsigned long"}},
                             "include/asm-generic/getorder.h", 29, Linkage::kStatic,
                             InlineHint::kAuto);
    spec.defined_in_header = true;
    f.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  // finish_task_switch: stable scheduler probe target.
  {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kEnd},
                        MakeFunc("finish_task_switch", "struct rq *",
                                 {{"prev", "struct task_struct *"}}, "kernel/sched/core.c", 4900,
                                 Linkage::kGlobal, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  // LSM hooks (unstable despite their security significance).
  for (const char* name : {"security_file_open", "security_inode_create",
                           "security_path_unlink", "security_socket_connect",
                           "security_bprm_check"}) {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc(name, "int", {{"arg0", "void *"}}, "security/security.c", 400,
                             Linkage::kGlobal, InlineHint::kNever);
    spec.is_lsm_hook = true;
    f.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;  // security_task_alloc added in v4.15 era
    FuncSpec spec = MakeFunc("security_task_alloc", "int",
                             {{"task", "struct task_struct *"}, {"clone_flags", "unsigned long"}},
                             "security/security.c", 410, Linkage::kGlobal, InlineHint::kNever);
    spec.is_lsm_hook = true;
    f.stages.push_back({{kV415, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  // kfuncs: no signature changes observed, but removals/renames happen.
  for (const char* name : {"bpf_task_acquire", "bpf_task_release"}) {
    ScriptedFunc f;
    FuncSpec spec = MakeFunc(name, "struct task_struct *", {{"p", "struct task_struct *"}},
                             "kernel/bpf/helpers.c", 2100, Linkage::kGlobal, InlineHint::kNever);
    spec.is_kfunc = true;
    f.stages.push_back({{kV62, kEnd}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;  // a removed kfunc (f85671c-style)
    FuncSpec spec = MakeFunc("bpf_ct_set_timeout", "int",
                             {{"ct", "struct nf_conn *"}, {"timeout", "u32"}},
                             "net/netfilter/nf_conntrack_bpf.c", 300, Linkage::kGlobal,
                             InlineHint::kNever);
    spec.is_kfunc = true;
    f.stages.push_back({{kV62, kV65}, std::move(spec)});
    cat.AddFunc(std::move(f));
  }
  // Name collisions: destroy_inodecache is defined by many filesystems;
  // do_readahead by two unrelated files with different signatures.
  for (const char* file : {"fs/ext4/super.c", "fs/xfs/xfs_super.c", "fs/btrfs/super.c",
                           "fs/f2fs/super.c"}) {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kEnd}, MakeFunc("destroy_inodecache", "void", {}, file, 120,
                                               Linkage::kStatic, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kEnd},
                        MakeFunc("do_readahead", "int",
                                 {{"journal", "struct journal_s *"}, {"start", "unsigned int"}},
                                 "fs/jbd2/recovery.c", 90, Linkage::kStatic, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }
  {
    ScriptedFunc f;
    f.stages.push_back({{kV44, kEnd},
                        MakeFunc("do_readahead", "int",
                                 {{"mapping", "struct address_space *"}, {"filp", "struct file *"},
                                  {"index", "unsigned long"}, {"nr", "unsigned long"}},
                                 "mm/readahead.c", 580, Linkage::kStatic, InlineHint::kNever)});
    cat.AddFunc(std::move(f));
  }

  // Core structs.
  {
    ScriptedStruct st;  // task_struct: three eras
    StructSpec era1;
    era1.name = "task_struct";
    era1.fields = {{"state", "long"},    {"flags", "unsigned int"}, {"pid", "pid_t"},
                   {"tgid", "pid_t"},    {"comm", "char[16]"},      {"prio", "int"},
                   {"utime", "cputime_t"}, {"stime", "cputime_t"}};
    StructSpec era2 = era1;
    era2.fields[6] = {"utime", "u64"};  // 5613fda: cputime_t -> u64
    era2.fields[7] = {"stime", "u64"};
    StructSpec era3 = era2;
    era3.fields[0] = {"__state", "unsigned int"};  // 2f064a5
    st.stages.push_back({{kV44, kV415}, std::move(era1)});
    st.stages.push_back({{kV415, kV515}, std::move(era2)});
    st.stages.push_back({{kV515, kEnd}, std::move(era3)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "filename";
    spec.fields = {{"name", "const char *"}, {"uptr", "const char *"}, {"refcnt", "int"}};
    st.stages.push_back({{kV415, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "file";
    spec.fields = {{"f_flags", "unsigned int"}, {"f_mode", "fmode_t"}, {"f_pos", "loff_t"},
                   {"f_inode", "struct inode *"}};
    st.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "renamedata";
    spec.fields = {{"old_dir", "struct inode *"}, {"old_dentry", "struct dentry *"},
                   {"new_dir", "struct inode *"}, {"new_dentry", "struct dentry *"},
                   {"flags", "unsigned int"}};
    st.stages.push_back({{kV513, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;  // timespec removed in the y2038 cleanup (9afc5ee era)
    StructSpec spec;
    spec.name = "timespec";
    spec.fields = {{"tv_sec", "__kernel_time_t"}, {"tv_nsec", "long"}};
    st.stages.push_back({{kV44, kV58}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }
  {
    ScriptedStruct st;
    StructSpec spec;
    spec.name = "sock";
    spec.fields = {{"sk_state", "unsigned char"}, {"sk_protocol", "u16"},
                   {"sk_num", "u16"}, {"sk_dport", "u16"}};
    st.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddStruct(std::move(st));
  }

  // Scheduler/timer/mm tracepoints.
  {
    ScriptedTracepoint tp;
    TracepointSpec spec;
    spec.event_name = "sched_switch";
    spec.class_name = "sched_switch";
    spec.func_params = {{"preempt", "bool"}, {"prev", "struct task_struct *"},
                        {"next", "struct task_struct *"}};
    spec.event_fields = {{"prev_comm", "char[16]"}, {"prev_pid", "pid_t"},
                         {"prev_state", "long"},    {"next_comm", "char[16]"},
                         {"next_pid", "pid_t"}};
    spec.fmt = "\"prev_pid=%d next_pid=%d\", REC->prev_pid, REC->next_pid";
    tp.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddTracepoint(std::move(tp));
  }
  {
    ScriptedTracepoint tp;  // itimer_state: value_usec -> value_nsec (bd40a17)
    TracepointSpec old_spec;
    old_spec.event_name = "itimer_state";
    old_spec.class_name = "itimer_state";
    old_spec.func_params = {{"which", "int"}, {"value", "const struct itimerspec64 *"}};
    old_spec.event_fields = {{"which", "int"}, {"value_sec", "long"}, {"value_usec", "long"}};
    old_spec.fmt = "\"which=%d\", REC->which";
    TracepointSpec new_spec = old_spec;
    new_spec.event_fields[2] = {"value_nsec", "long"};
    tp.stages.push_back({{kV44, kV50}, std::move(old_spec)});
    tp.stages.push_back({{kV50, kEnd}, std::move(new_spec)});
    cat.AddTracepoint(std::move(tp));
  }
  {
    ScriptedTracepoint tp;  // kmem_alloc absorbs kmem_alloc_node in v6.2 (11e9734)
    TracepointSpec old_spec;
    old_spec.event_name = "kmem_alloc";
    old_spec.class_name = "kmem_alloc";
    old_spec.func_params = {{"call_site", "unsigned long"}, {"ptr", "const void *"},
                            {"bytes_req", "size_t"}, {"gfp_flags", "gfp_t"}};
    old_spec.event_fields = {{"call_site", "unsigned long"}, {"ptr", "const void *"},
                             {"bytes_req", "size_t"}};
    old_spec.fmt = "\"call_site=%lx\", REC->call_site";
    TracepointSpec new_spec = old_spec;
    new_spec.func_params.push_back({"node", "int"});
    new_spec.event_fields.push_back({"node", "int"});
    tp.stages.push_back({{kV44, kV62}, std::move(old_spec)});
    tp.stages.push_back({{kV62, kEnd}, std::move(new_spec)});
    cat.AddTracepoint(std::move(tp));
  }
  {
    ScriptedTracepoint tp;  // removed by 11e9734
    TracepointSpec spec;
    spec.event_name = "kmem_alloc_node";
    spec.class_name = "kmem_alloc";
    spec.func_params = {{"call_site", "unsigned long"}, {"ptr", "const void *"}, {"node", "int"}};
    spec.event_fields = {{"call_site", "unsigned long"}, {"node", "int"}};
    spec.fmt = "\"call_site=%lx node=%d\", REC->call_site, REC->node";
    tp.stages.push_back({{kV44, kV62}, std::move(spec)});
    cat.AddTracepoint(std::move(tp));
  }
  {
    ScriptedTracepoint tp;  // the artifact-appendix example
    TracepointSpec spec;
    spec.event_name = "timer_init";
    spec.class_name = "timer_class";
    spec.func_params = {{"timer", "struct timer_list *"}};
    spec.event_fields = {{"timer", "void *"}};
    spec.fmt = "\"timer=%p\", REC->timer";
    tp.stages.push_back({{kV44, kEnd}, std::move(spec)});
    cat.AddTracepoint(std::move(tp));
  }
}

}  // namespace

ScriptedCatalog BuildCuratedCatalog() {
  ScriptedCatalog cat;
  AddBlockLayer(cat);
  AddReadaheadLineage(cat);
  AddVfsAndMisc(cat);
  return cat;
}

}  // namespace depsurf
