// Deterministic kernel-flavored identifier generation for the synthetic
// background population. Names are unique by construction (derived from a
// dense ordinal) and stable across versions.
#ifndef DEPSURF_SRC_KERNELGEN_NAME_CORPUS_H_
#define DEPSURF_SRC_KERNELGEN_NAME_CORPUS_H_

#include <cstdint>
#include <string>

namespace depsurf {

// Construct families with independent name spaces.
enum class NameKind : uint8_t { kFunc, kStruct, kTracepoint, kSyscall };

class NameCorpus {
 public:
  explicit NameCorpus(uint64_t seed) : seed_(seed) {}

  // Unique, stable name for the given ordinal, e.g. "ext4_alloc_folio".
  // Distinct ordinals yield distinct names within a kind.
  std::string Name(NameKind kind, uint64_t ordinal) const;

  // Subsystem tag of a construct ("ext4", "blk", ...). Drives file paths
  // and flavor-removal bias (cloud flavors drop driver subsystems).
  std::string Subsystem(uint64_t ordinal) const;

  // True if the subsystem is device-driver-ish (candidates for removal in
  // cloud flavors).
  bool IsDriverSubsystem(uint64_t ordinal) const;

  // Source file for the function with this ordinal, e.g. "fs/ext4/inode.c".
  std::string SourceFile(uint64_t ordinal) const;

  // Header path for header-defined static functions.
  std::string HeaderFile(uint64_t ordinal) const;

  // Tracepoint event name ("ext4_alloc_da_blocks") and class name.
  std::string TracepointEvent(uint64_t ordinal) const;
  std::string TracepointClass(uint64_t ordinal) const;

 private:
  uint64_t seed_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_NAME_CORPUS_H_
