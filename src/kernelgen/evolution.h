// The statistical background population: tens of thousands of synthetic
// kernel constructs whose births, deaths, and mutations across the 17 study
// versions follow the rates the paper measured (Tables 3-4).
//
// Determinism: every decision is a pure function of (seed, construct
// ordinal, transition), so any subset of versions can be generated in any
// order and constructs keep stable identities.
#ifndef DEPSURF_SRC_KERNELGEN_EVOLUTION_H_
#define DEPSURF_SRC_KERNELGEN_EVOLUTION_H_

#include <array>
#include <cstdint>
#include <functional>

#include "src/kernelgen/name_corpus.h"
#include "src/kernelgen/rates.h"
#include "src/kmodel/spec.h"

namespace depsurf {

class EvolutionModel {
 public:
  // `scale` multiplies every population (1.0 = paper scale; tests use small
  // values). Populations below ~20 constructs stop being statistically
  // meaningful but remain valid.
  EvolutionModel(uint64_t seed, double scale);

  const NameCorpus& names() const { return names_; }
  double scale() const { return scale_; }

  // Expected population sizes at a version (before configuration).
  uint32_t FuncCount(int version_index) const;
  uint32_t StructCount(int version_index) const;
  uint32_t TracepointCount(int version_index) const;

  // Enumerates background constructs alive at kStudyVersions[version_index].
  // The ordinal passed to the callback is the construct's stable identity.
  void ForEachFunc(int version_index,
                   const std::function<void(uint64_t ordinal, const FuncSpec&)>& fn) const;
  void ForEachStruct(int version_index,
                     const std::function<void(uint64_t ordinal, const StructSpec&)>& fn) const;
  void ForEachTracepoint(
      int version_index,
      const std::function<void(uint64_t ordinal, const TracepointSpec&)>& fn) const;

  // Direct access for tests and the configurator: is this ordinal alive at
  // the version, and what does its spec look like there?
  bool FuncAlive(uint64_t ordinal, int version_index) const;
  FuncSpec FuncAt(uint64_t ordinal, int version_index) const;
  StructSpec StructAt(uint64_t ordinal, int version_index) const;
  TracepointSpec TracepointAt(uint64_t ordinal, int version_index) const;

 private:
  enum class Kind : uint8_t { kFunc = 1, kStruct = 2, kTracepoint = 3 };

  // Generation bookkeeping: gen_start_[k][g] is the first ordinal born at
  // version g; ordinals in [gen_start_[k][g], gen_start_[k][g+1]) were born
  // there.
  int BirthVersion(Kind kind, uint64_t ordinal) const;
  bool Alive(Kind kind, uint64_t ordinal, int version_index) const;
  bool Removed(Kind kind, uint64_t ordinal, int transition) const;
  bool Changed(Kind kind, uint64_t ordinal, int transition) const;
  double RemoveRate(Kind kind, int transition) const;
  double ChangeRate(Kind kind, int transition) const;

  void ForEach(Kind kind, int version_index,
               const std::function<void(uint64_t ordinal)>& fn) const;

  FuncSpec BaseFunc(uint64_t ordinal) const;
  StructSpec BaseStruct(uint64_t ordinal) const;
  TracepointSpec BaseTracepoint(uint64_t ordinal) const;
  void MutateFunc(FuncSpec& spec, uint64_t ordinal, int transition) const;
  void MutateStruct(StructSpec& spec, uint64_t ordinal, int transition) const;
  void MutateTracepoint(TracepointSpec& spec, uint64_t ordinal, int transition) const;

  uint64_t seed_;
  double scale_;
  NameCorpus names_;
  // [kind][version]: first ordinal of that generation; last slot = total.
  std::array<std::array<uint64_t, kNumVersions + 1>, 4> gen_start_{};
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_EVOLUTION_H_
