#include "src/kernelgen/compiler.h"

#include <algorithm>
#include <map>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Effective inline outcome for one function in one build.
enum class InlineOutcome { kNone, kSelective, kFull };

// Decisions are *sticky*: keyed on the function identity so the same source
// function gets the same outcome across versions, with a small per-build
// re-roll modeling the "no guarantee across compiler versions" variation
// the paper measures at a few percent (Figure 5).
constexpr double kPerBuildRerollRate = 0.01;

InlineOutcome DecideInline(const FuncSpec& spec, uint64_t sticky_key, uint64_t build_key,
                           const CompilationRates& rates) {
  switch (spec.inline_hint) {
    case InlineHint::kForceFull:
      return InlineOutcome::kFull;
    case InlineHint::kForceSelective:
      return InlineOutcome::kSelective;
    case InlineHint::kNever:
      return InlineOutcome::kNone;
    case InlineHint::kAuto:
      break;
  }
  Prng sticky(sticky_key);
  Prng per_build(HashCombine({sticky_key, build_key}));
  Prng& prng = per_build.NextBool(kPerBuildRerollRate) ? per_build : sticky;
  if (spec.linkage == Linkage::kStatic && !spec.defined_in_header &&
      prng.NextBool(rates.full_inline_static)) {
    return InlineOutcome::kFull;
  }
  if (prng.NextBool(rates.selective_inline)) {
    return InlineOutcome::kSelective;
  }
  return InlineOutcome::kNone;
}

// Transformation suffix, if any, for a function that kept a symbol. Sticky
// per function; the per-compiler factor only gates whether the sticky draw
// fires (so transformations appear/disappear at toolchain boundaries, not
// randomly per image).
std::string DecideTransform(const FuncSpec& spec, const BuildSpec& build, uint64_t sticky_key,
                            const CompilationRates& rates) {
  if (!spec.forced_transform.empty()) {
    if (build.arch == Arch::kArm32 && spec.forced_transform == "isra") {
      return "";  // ISRA is disabled on arm32 (a077224)
    }
    if (build.gcc_major >= spec.forced_transform_min_gcc) {
      return "." + spec.forced_transform + ".0";
    }
    return "";
  }
  if (spec.inline_hint != InlineHint::kAuto) {
    return "";  // scripted lineages opt in via forced_transform only
  }
  // Older compilers transform noticeably less (Figure 6); the ramp is
  // gradual so transform churn spreads across toolchain upgrades instead of
  // spiking at one version boundary.
  double factor = 0.55 + 0.075 * (build.gcc_major - 6);
  factor = std::clamp(factor, 0.55, 1.0);
  Prng prng(sticky_key);
  const CompilationRates& r = rates;
  double u_isra = prng.NextDouble();
  double u_constprop = prng.NextDouble();
  double u_part = prng.NextDouble();
  double u_cold = prng.NextDouble();
  if (build.arch != Arch::kArm32 && u_isra < r.transform_isra * factor) {
    return ".isra.0";
  }
  if (u_constprop < r.transform_constprop * factor) {
    return ".constprop.0";
  }
  if (u_part < r.transform_part * factor) {
    return ".part.0";
  }
  if (build.gcc_major >= 8 && u_cold < r.transform_cold) {
    return ".cold";
  }
  return "";
}

}  // namespace

CompiledImage CompileKernel(uint64_t seed, ConfiguredKernel kernel,
                            const CompilationRates& rates) {
  CompiledImage image;
  image.funcs.reserve(kernel.funcs.size());
  const BuildSpec& build = kernel.build;
  uint64_t build_key = build.Key();
  // Inline re-rolls depend on the toolchain, not the flavor: the lowlatency
  // kernel is built by the same compiler from the same tree and must make
  // (almost exactly) the same inline decisions as generic.
  uint64_t toolchain_key = HashCombine({build.version.Key(),
                                        static_cast<uint64_t>(build.gcc_major),
                                        static_cast<uint64_t>(build.arch)});

  // TU-mate index for synthesizing callers of inlined background functions.
  std::map<std::string, std::vector<const FuncSpec*>> by_file;
  for (const FuncSpec& spec : kernel.funcs) {
    by_file[spec.decl_file].push_back(&spec);
  }
  auto neighbor_callers = [&](const FuncSpec& spec, size_t want) {
    std::vector<std::string> out;
    const auto& mates = by_file[spec.decl_file];
    for (const FuncSpec* mate : mates) {
      if (mate->name != spec.name && out.size() < want) {
        out.push_back(spec.decl_file + ":" + mate->name);
      }
    }
    return out;
  };

  uint64_t cursor = build.arch == Arch::kArm32 ? 0xc0008000ull : 0xffffffff81000000ull;
  if (ElfIdentFor(build.arch).klass == ElfClass::k32) {
    cursor = 0xc0008000ull;
  }

  for (const FuncSpec& spec : kernel.funcs) {
    CompiledFunction func;
    func.spec = spec;
    // Sticky identity (stable across versions/builds) and per-build key.
    uint64_t sticky = HashCombine({seed, HashString(spec.name), HashString(spec.decl_file)});
    uint64_t fkey = HashCombine({sticky, build_key});

    InlineOutcome outcome =
        DecideInline(spec, HashCombine({sticky, 0x111}), toolchain_key, rates);

    // Split declared callers into inlined and out-of-line sets.
    std::vector<std::string> inline_callers;
    std::vector<std::string> call_callers;
    if (!spec.callers.empty()) {
      for (const std::string& caller : spec.callers) {
        bool same_tu = StartsWith(caller, spec.decl_file + ":");
        switch (outcome) {
          case InlineOutcome::kFull:
            inline_callers.push_back(caller);
            break;
          case InlineOutcome::kSelective:
            (same_tu ? inline_callers : call_callers).push_back(caller);
            break;
          case InlineOutcome::kNone:
            call_callers.push_back(caller);
            break;
        }
      }
      if (outcome == InlineOutcome::kSelective && inline_callers.empty() &&
          !call_callers.empty()) {
        // Selective inline needs at least one inlined site.
        inline_callers.push_back(call_callers.back());
        call_callers.pop_back();
      }
    } else if (outcome != InlineOutcome::kNone) {
      inline_callers = neighbor_callers(spec, outcome == InlineOutcome::kFull ? 2 : 1);
      if (outcome == InlineOutcome::kSelective) {
        call_callers = neighbor_callers(spec, 2);
        if (call_callers.size() > 1) {
          call_callers.erase(call_callers.begin());  // keep sets distinct-ish
        }
      }
      if (inline_callers.empty()) {
        // No TU-mates to inline into: the function stays out of line.
        outcome = InlineOutcome::kNone;
        call_callers.clear();
      }
    }

    size_t num_instances = 1;
    if (spec.defined_in_header) {
      Prng prng(HashCombine({sticky, 0x222}));
      num_instances = 2 + prng.NextBelow(6);
      if (prng.NextBelow(20) == 0) {
        num_instances = 10 + prng.NextBelow(30);  // get_order-style heavy use
      }
    }

    for (size_t i = 0; i < num_instances; ++i) {
      CompiledInstance inst;
      inst.external = spec.linkage == Linkage::kGlobal;
      if (spec.defined_in_header) {
        // Each including TU gets its own copy.
        inst.tu_file =
            kernel.funcs[HashCombine({sticky, 0x5a, i}) % kernel.funcs.size()].decl_file;
        if (EndsWith(inst.tu_file, ".h")) {
          inst.tu_file = "fs/inode.c";  // includers are .c files
        }
      } else {
        inst.tu_file = spec.decl_file;
      }
      switch (outcome) {
        case InlineOutcome::kFull:
          inst.inline_attr =
              spec.linkage == Linkage::kStatic ? DwInl::kDeclaredInlined : DwInl::kInlined;
          inst.inline_callers = inline_callers;
          break;
        case InlineOutcome::kSelective:
          inst.inline_attr = DwInl::kInlined;
          inst.inline_callers = inline_callers;
          inst.call_callers = call_callers;
          break;
        case InlineOutcome::kNone:
          inst.inline_attr =
              spec.defined_in_header ? DwInl::kDeclaredNotInlined : DwInl::kNotInlined;
          inst.call_callers = call_callers;
          break;
      }
      if (outcome != InlineOutcome::kFull) {
        // Out-of-line code and a symbol (possibly transformed).
        Prng addr_prng(HashCombine({fkey, 0x333, i}));
        cursor += 32 + addr_prng.NextBelow(224);
        cursor &= ~uint64_t{15};
        inst.address = cursor;
        std::string suffix = DecideTransform(spec, build, HashCombine({sticky, 0x444}), rates);
        inst.symbol_name = spec.name + suffix;
      }
      func.instances.push_back(std::move(inst));
    }
    image.funcs.push_back(std::move(func));
  }

  image.kernel = std::move(kernel);
  return image;
}

}  // namespace depsurf
