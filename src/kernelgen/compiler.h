// The compiler simulator: turns a configured source model into compiled
// function instances with the effects the paper measured (Figures 5-6,
// Table 6): full/selective inlining, constprop/isra/part/cold symbol
// transformations, header-static duplication, and name collisions (which
// arrive from the source model and simply survive compilation).
#ifndef DEPSURF_SRC_KERNELGEN_COMPILER_H_
#define DEPSURF_SRC_KERNELGEN_COMPILER_H_

#include <string>
#include <vector>

#include "src/dwarf/dwarf.h"
#include "src/kernelgen/configurator.h"

namespace depsurf {

// One compiled copy of a source function (normally one; several for
// header-defined statics compiled into multiple translation units).
struct CompiledInstance {
  std::string tu_file;  // translation unit the copy lives in
  DwInl inline_attr = DwInl::kNotInlined;
  bool external = false;
  uint64_t address = 0;            // 0: no out-of-line code (fully inlined)
  std::string symbol_name;         // empty: no symbol; may carry ".isra.0" etc.
  std::vector<std::string> inline_callers;  // "file:func" inlined call sites
  std::vector<std::string> call_callers;    // "file:func" out-of-line calls

  bool HasCode() const { return address != 0; }
};

struct CompiledFunction {
  FuncSpec spec;
  std::vector<CompiledInstance> instances;
};

struct CompiledImage {
  ConfiguredKernel kernel;
  std::vector<CompiledFunction> funcs;
};

// Deterministically "compiles" the kernel. Consumes the configured model.
// `rates` overrides the default compilation-rate parameters (used by the
// ablation benches, e.g. inline-threshold sweeps).
CompiledImage CompileKernel(uint64_t seed, ConfiguredKernel kernel,
                            const CompilationRates& rates = kCompilationRates);

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_COMPILER_H_
