#include "src/kernelgen/evolution.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

constexpr const char* kParamTypePool[] = {
    "int",           "unsigned int",        "unsigned long", "u32",
    "u64",           "bool",                "size_t",        "void *",
    "struct task_struct *", "struct file *", "struct page *", "struct inode *",
    "struct sock *", "struct device *",     "char *",        "const char *",
    "loff_t",        "gfp_t",
};
constexpr size_t kParamTypePoolSize = sizeof(kParamTypePool) / sizeof(kParamTypePool[0]);

constexpr const char* kReturnTypePool[] = {
    "void", "int", "long", "bool", "unsigned long", "u64", "struct page *", "void *",
};
constexpr size_t kReturnTypePoolSize = sizeof(kReturnTypePool) / sizeof(kReturnTypePool[0]);

constexpr const char* kFieldNamePool[] = {
    "flags", "state", "count", "len",   "mode",  "pid",   "ts",     "ret",
    "addr",  "size",  "next",  "prev",  "lock",  "refs",  "owner",  "id",
    "prio",  "mask",  "start", "end",   "index", "order", "weight", "depth",
};
constexpr size_t kFieldNamePoolSize = sizeof(kFieldNamePool) / sizeof(kFieldNamePool[0]);

constexpr const char* kParamNamePool[] = {
    "p",   "arg", "val", "ptr", "ctx", "req", "dev", "obj", "src", "dst",
};

}  // namespace

EvolutionModel::EvolutionModel(uint64_t seed, double scale)
    : seed_(seed), scale_(scale), names_(seed) {
  auto fill = [&](Kind kind, uint32_t base) {
    auto& starts = gen_start_[static_cast<size_t>(kind)];
    double count = static_cast<double>(base) * scale_;
    starts[0] = 0;
    double alive = count;
    starts[1] = static_cast<uint64_t>(std::llround(count));
    for (int t = 0; t < kNumVersions - 1; ++t) {
      const TransitionRates& rates = TransitionRatesAt(t);
      double add = kind == Kind::kFunc     ? rates.func_add
                   : kind == Kind::kStruct ? rates.struct_add
                                           : rates.tracept_add;
      double remove = kind == Kind::kFunc     ? rates.func_remove
                      : kind == Kind::kStruct ? rates.struct_remove
                                              : rates.tracept_remove;
      double born = alive * add;
      starts[t + 2] = starts[t + 1] + static_cast<uint64_t>(std::llround(born));
      alive = alive * (1.0 - remove) + born;
    }
  };
  fill(Kind::kFunc, kBasePopulation.funcs);
  fill(Kind::kStruct, kBasePopulation.structs);
  fill(Kind::kTracepoint, kBasePopulation.tracepoints);
}

int EvolutionModel::BirthVersion(Kind kind, uint64_t ordinal) const {
  const auto& starts = gen_start_[static_cast<size_t>(kind)];
  for (int g = 0; g < kNumVersions; ++g) {
    if (ordinal < starts[g + 1]) {
      return g;
    }
  }
  return kNumVersions;  // out of range
}

double EvolutionModel::RemoveRate(Kind kind, int transition) const {
  const TransitionRates& rates = TransitionRatesAt(transition);
  switch (kind) {
    case Kind::kFunc:
      return rates.func_remove;
    case Kind::kStruct:
      return rates.struct_remove;
    case Kind::kTracepoint:
      return rates.tracept_remove;
  }
  return 0;
}

double EvolutionModel::ChangeRate(Kind kind, int transition) const {
  const TransitionRates& rates = TransitionRatesAt(transition);
  switch (kind) {
    case Kind::kFunc:
      return rates.func_change;
    case Kind::kStruct:
      return rates.struct_change;
    case Kind::kTracepoint:
      return rates.tracept_change;
  }
  return 0;
}

bool EvolutionModel::Removed(Kind kind, uint64_t ordinal, int transition) const {
  Prng prng(HashCombine(
      {seed_, static_cast<uint64_t>(kind), 0xdead, ordinal, static_cast<uint64_t>(transition)}));
  return prng.NextBool(RemoveRate(kind, transition));
}

bool EvolutionModel::Changed(Kind kind, uint64_t ordinal, int transition) const {
  Prng prng(HashCombine(
      {seed_, static_cast<uint64_t>(kind), 0xc4a9, ordinal, static_cast<uint64_t>(transition)}));
  return prng.NextBool(ChangeRate(kind, transition));
}

bool EvolutionModel::Alive(Kind kind, uint64_t ordinal, int version_index) const {
  int born = BirthVersion(kind, ordinal);
  if (born > version_index) {
    return false;
  }
  for (int t = born; t < version_index; ++t) {
    if (Removed(kind, ordinal, t)) {
      return false;
    }
  }
  return true;
}

void EvolutionModel::ForEach(Kind kind, int version_index,
                             const std::function<void(uint64_t)>& fn) const {
  const auto& starts = gen_start_[static_cast<size_t>(kind)];
  uint64_t limit = starts[version_index + 1];
  for (uint64_t ordinal = 0; ordinal < limit; ++ordinal) {
    if (Alive(kind, ordinal, version_index)) {
      fn(ordinal);
    }
  }
}

uint32_t EvolutionModel::FuncCount(int version_index) const {
  uint32_t n = 0;
  ForEach(Kind::kFunc, version_index, [&](uint64_t) { ++n; });
  return n;
}

uint32_t EvolutionModel::StructCount(int version_index) const {
  uint32_t n = 0;
  ForEach(Kind::kStruct, version_index, [&](uint64_t) { ++n; });
  return n;
}

uint32_t EvolutionModel::TracepointCount(int version_index) const {
  uint32_t n = 0;
  ForEach(Kind::kTracepoint, version_index, [&](uint64_t) { ++n; });
  return n;
}

bool EvolutionModel::FuncAlive(uint64_t ordinal, int version_index) const {
  return Alive(Kind::kFunc, ordinal, version_index);
}

// --- Base spec synthesis -------------------------------------------------

namespace {

Linkage LinkageOf(uint64_t seed, uint64_t ordinal) {
  Prng prng(HashCombine({seed, 0x111c, ordinal}));
  return prng.NextBool(kCompilationRates.static_fraction) ? Linkage::kStatic : Linkage::kGlobal;
}

}  // namespace

FuncSpec EvolutionModel::BaseFunc(uint64_t ordinal) const {
  Prng prng(HashCombine({seed_, 0xf00d, ordinal}));
  FuncSpec spec;
  spec.name = names_.Name(NameKind::kFunc, ordinal);
  spec.return_type = kReturnTypePool[prng.NextBelow(kReturnTypePoolSize)];
  size_t num_params = prng.NextInRange(0, 5);
  for (size_t i = 0; i < num_params; ++i) {
    spec.params.push_back(
        ParamSpec{StrFormat("%s%zu", kParamNamePool[prng.NextBelow(10)], i),
                  kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
  }
  spec.linkage = LinkageOf(seed_, ordinal);
  if (spec.linkage == Linkage::kStatic &&
      prng.NextBool(kCompilationRates.header_defined_fraction)) {
    spec.defined_in_header = true;
    spec.decl_file = names_.HeaderFile(ordinal);
  } else {
    spec.decl_file = names_.SourceFile(ordinal);
  }
  spec.decl_line = static_cast<uint32_t>(prng.NextInRange(10, 4000));

  // Name collisions: a small fraction of statics deliberately reuse another
  // construct's name (Table 6). The partner's linkage decides whether this
  // is a static-static or the much rarer static-global collision.
  if (spec.linkage == Linkage::kStatic && !spec.defined_in_header && ordinal > 8) {
    Prng coll(HashCombine({seed_, 0xc011, ordinal}));
    if (coll.NextBool(kCompilationRates.collision_static_static)) {
      bool want_global = coll.NextBool(0.04);
      for (int attempt = 0; attempt < 8; ++attempt) {
        uint64_t partner = coll.NextBelow(ordinal);
        if ((LinkageOf(seed_, partner) == Linkage::kGlobal) == want_global) {
          spec.name = names_.Name(NameKind::kFunc, partner);
          break;
        }
      }
    }
  }
  return spec;
}

StructSpec EvolutionModel::BaseStruct(uint64_t ordinal) const {
  Prng prng(HashCombine({seed_, 0x57ab, ordinal}));
  StructSpec spec;
  spec.name = names_.Name(NameKind::kStruct, ordinal);
  size_t num_fields = prng.NextInRange(3, 24);
  std::set<std::string> used;
  for (size_t i = 0; i < num_fields; ++i) {
    std::string name = kFieldNamePool[prng.NextBelow(kFieldNamePoolSize)];
    if (!used.insert(name).second) {
      name += StrFormat("%zu", i);
      used.insert(name);
    }
    spec.fields.push_back(FieldSpec{name, kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
  }
  return spec;
}

TracepointSpec EvolutionModel::BaseTracepoint(uint64_t ordinal) const {
  Prng prng(HashCombine({seed_, 0x7ace, ordinal}));
  TracepointSpec spec;
  spec.event_name = names_.TracepointEvent(ordinal);
  spec.class_name = names_.TracepointClass(ordinal);
  size_t num_params = prng.NextInRange(1, 4);
  for (size_t i = 0; i < num_params; ++i) {
    spec.func_params.push_back(
        ParamSpec{StrFormat("arg%zu", i), kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
  }
  size_t num_fields = prng.NextInRange(2, 8);
  std::set<std::string> used;
  for (size_t i = 0; i < num_fields; ++i) {
    std::string name = kFieldNamePool[prng.NextBelow(kFieldNamePoolSize)];
    if (!used.insert(name).second) {
      name += StrFormat("%zu", i);
      used.insert(name);
    }
    spec.event_fields.push_back(
        FieldSpec{name, kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
  }
  spec.fmt = "\"" + spec.event_fields[0].name + "=%lu\", REC->" + spec.event_fields[0].name;
  return spec;
}

// --- Mutation replay ------------------------------------------------------

void EvolutionModel::MutateFunc(FuncSpec& spec, uint64_t ordinal, int transition) const {
  Prng prng(HashCombine({seed_, 0x37ab, 0xfc, ordinal, static_cast<uint64_t>(transition)}));
  const ChangeBreakdown& b = kChangeBreakdown;
  bool any = false;
  if (prng.NextBool(b.param_added)) {
    spec.params.push_back(ParamSpec{StrFormat("new%d", transition),
                                    kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
    any = true;
  }
  if (prng.NextBool(b.param_removed) && !spec.params.empty()) {
    spec.params.erase(spec.params.begin() +
                      static_cast<long>(prng.NextBelow(spec.params.size())));
    any = true;
  }
  if (prng.NextBool(b.param_reordered) && spec.params.size() >= 2) {
    size_t i = prng.NextBelow(spec.params.size());
    size_t j = prng.NextBelow(spec.params.size());
    if (i != j) {
      std::swap(spec.params[i], spec.params[j]);
      any = true;
    }
  }
  if (prng.NextBool(b.param_type_changed) && !spec.params.empty()) {
    size_t i = prng.NextBelow(spec.params.size());
    std::string next = kParamTypePool[prng.NextBelow(kParamTypePoolSize)];
    if (next != spec.params[i].type) {
      spec.params[i].type = next;
      any = true;
    }
  }
  if (prng.NextBool(b.return_type_changed)) {
    std::string next = kReturnTypePool[prng.NextBelow(kReturnTypePoolSize)];
    if (next != spec.return_type) {
      spec.return_type = next;
      any = true;
    }
  }
  if (!any) {
    // A "changed" function must actually change; default to param addition.
    spec.params.push_back(ParamSpec{StrFormat("extra%d", transition), "unsigned long"});
  }
}

void EvolutionModel::MutateStruct(StructSpec& spec, uint64_t ordinal, int transition) const {
  Prng prng(HashCombine({seed_, 0x5c, ordinal, static_cast<uint64_t>(transition)}));
  const ChangeBreakdown& b = kChangeBreakdown;
  bool any = false;
  if (prng.NextBool(b.field_added)) {
    spec.fields.push_back(FieldSpec{StrFormat("new_%d", transition),
                                    kParamTypePool[prng.NextBelow(kParamTypePoolSize)]});
    any = true;
  }
  if (prng.NextBool(b.field_removed) && spec.fields.size() > 1) {
    spec.fields.erase(spec.fields.begin() +
                      static_cast<long>(prng.NextBelow(spec.fields.size())));
    any = true;
  }
  if (prng.NextBool(b.field_type_changed) && !spec.fields.empty()) {
    size_t i = prng.NextBelow(spec.fields.size());
    // 60% silently-compatible widening, 40% breaking change to a pointer.
    std::string next = prng.NextBool(0.6) ? "long" : "void *";
    if (spec.fields[i].type != next) {
      spec.fields[i].type = next;
      any = true;
    }
  }
  if (!any) {
    spec.fields.push_back(FieldSpec{StrFormat("pad_%d", transition), "u32"});
  }
}

void EvolutionModel::MutateTracepoint(TracepointSpec& spec, uint64_t ordinal,
                                      int transition) const {
  Prng prng(HashCombine({seed_, 0x79, ordinal, static_cast<uint64_t>(transition)}));
  const ChangeBreakdown& b = kChangeBreakdown;
  bool any = false;
  if (prng.NextBool(b.tracept_event_changed)) {
    if (prng.NextBool(0.5) || spec.event_fields.size() <= 1) {
      spec.event_fields.push_back(FieldSpec{StrFormat("ev_%d", transition), "u64"});
    } else {
      spec.event_fields.erase(spec.event_fields.begin() +
                              static_cast<long>(prng.NextBelow(spec.event_fields.size())));
    }
    any = true;
  }
  if (prng.NextBool(b.tracept_func_changed)) {
    if (prng.NextBool(0.5) || spec.func_params.empty()) {
      spec.func_params.push_back(ParamSpec{StrFormat("fp_%d", transition), "unsigned long"});
    } else {
      spec.func_params.erase(spec.func_params.begin() +
                             static_cast<long>(prng.NextBelow(spec.func_params.size())));
    }
    any = true;
  }
  if (!any) {
    spec.event_fields.push_back(FieldSpec{StrFormat("ev_%d", transition), "u64"});
  }
}

// --- Spec-at-version ------------------------------------------------------

FuncSpec EvolutionModel::FuncAt(uint64_t ordinal, int version_index) const {
  FuncSpec spec = BaseFunc(ordinal);
  int born = BirthVersion(Kind::kFunc, ordinal);
  for (int t = born; t < version_index; ++t) {
    if (Changed(Kind::kFunc, ordinal, t)) {
      MutateFunc(spec, ordinal, t);
    }
  }
  return spec;
}

StructSpec EvolutionModel::StructAt(uint64_t ordinal, int version_index) const {
  StructSpec spec = BaseStruct(ordinal);
  int born = BirthVersion(Kind::kStruct, ordinal);
  for (int t = born; t < version_index; ++t) {
    if (Changed(Kind::kStruct, ordinal, t)) {
      MutateStruct(spec, ordinal, t);
    }
  }
  return spec;
}

TracepointSpec EvolutionModel::TracepointAt(uint64_t ordinal, int version_index) const {
  TracepointSpec spec = BaseTracepoint(ordinal);
  int born = BirthVersion(Kind::kTracepoint, ordinal);
  for (int t = born; t < version_index; ++t) {
    if (Changed(Kind::kTracepoint, ordinal, t)) {
      MutateTracepoint(spec, ordinal, t);
    }
  }
  return spec;
}

void EvolutionModel::ForEachFunc(
    int version_index, const std::function<void(uint64_t, const FuncSpec&)>& fn) const {
  ForEach(Kind::kFunc, version_index, [&](uint64_t ordinal) {
    FuncSpec spec = FuncAt(ordinal, version_index);
    fn(ordinal, spec);
  });
}

void EvolutionModel::ForEachStruct(
    int version_index, const std::function<void(uint64_t, const StructSpec&)>& fn) const {
  ForEach(Kind::kStruct, version_index, [&](uint64_t ordinal) {
    StructSpec spec = StructAt(ordinal, version_index);
    fn(ordinal, spec);
  });
}

void EvolutionModel::ForEachTracepoint(
    int version_index, const std::function<void(uint64_t, const TracepointSpec&)>& fn) const {
  ForEach(Kind::kTracepoint, version_index, [&](uint64_t ordinal) {
    TracepointSpec spec = TracepointAt(ordinal, version_index);
    fn(ordinal, spec);
  });
}

}  // namespace depsurf
