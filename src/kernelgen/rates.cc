#include "src/kernelgen/rates.h"

namespace depsurf {

const std::array<KernelVersion, kNumVersions> kStudyVersions = {{
    {4, 4},  {4, 8},  {4, 10}, {4, 13}, {4, 15}, {4, 18}, {5, 0},  {5, 3}, {5, 4},
    {5, 8},  {5, 11}, {5, 13}, {5, 15}, {5, 19}, {6, 2},  {6, 5},  {6, 8},
}};

const std::array<KernelVersion, 5> kLtsVersions = {{{4, 4}, {4, 15}, {5, 4}, {5, 15}, {6, 8}}};

int VersionIndex(KernelVersion version) {
  for (int i = 0; i < kNumVersions; ++i) {
    if (kStudyVersions[i] == version) {
      return i;
    }
  }
  return -1;
}

bool IsLts(KernelVersion version) {
  for (KernelVersion lts : kLtsVersions) {
    if (lts == version) {
      return true;
    }
  }
  return false;
}

int GccMajorFor(KernelVersion version) {
  // Ubuntu's toolchain progression over the study window.
  static constexpr std::array<int, kNumVersions> kGcc = {
      5, 5, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
  int index = VersionIndex(version);
  return index < 0 ? 9 : kGcc[index];
}

namespace {

// Per-LTS-span rates distributed uniformly over the span's 4 transitions.
// Spans: [4.4..4.15], [4.15..5.4], [5.4..5.15], [5.15..6.8].
constexpr TransitionRates kSpanRates[4] = {
    // func_add, func_rm, func_chg, st_add, st_rm, st_chg, tp_add, tp_rm, tp_chg, sys_add
    {0.0560, 0.0180, 0.0140, 0.0550, 0.0100, 0.0520, 0.0860, 0.0130, 0.0210, 0.002},
    {0.0545, 0.0185, 0.0115, 0.0450, 0.0100, 0.0450, 0.0370, 0.0080, 0.0210, 0.002},
    {0.0550, 0.0230, 0.0140, 0.0410, 0.0155, 0.0480, 0.0340, 0.0130, 0.0430, 0.002},
    {0.0590, 0.0200, 0.0165, 0.0390, 0.0100, 0.0480, 0.0430, 0.0105, 0.0370, 0.002},
};

}  // namespace

const TransitionRates& TransitionRatesAt(int from_version_index) {
  int span = 0;
  if (from_version_index >= 12) {
    span = 3;
  } else if (from_version_index >= 8) {
    span = 2;
  } else if (from_version_index >= 4) {
    span = 1;
  }
  return kSpanRates[span];
}

namespace {

// Table 5, architecture columns (counts at scale 1.0 against the 48.0k /
// 8.4k / 752 / 333 generic-x86 v5.4 baseline). Function deltas carry a
// 1.8x injection factor: the paper's counts are over the attachable
// surface, while these probabilities apply to all source functions (about
// 45% of which later vanish into inlining and so never show up in the
// measured attachable diff).
constexpr ConfigEffect kArchEffects[] = {
    // x86 (baseline: no deltas)
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8800},
    // arm64
    {14200, 16500, 216, 1000, 1700, 81, 112, 45, 44, 2, 9600},
    // arm32
    {21200, 22700, 190, 1900, 2000, 154, 132, 70, 29, 74, 9600},
    // ppc
    {19100, 9700, 246, 1600, 570, 116, 129, 25, 9, 23, 8100},
    // riscv
    {24300, 3800, 181, 2000, 157, 98, 127, 0, 55, 2, 7600},
};

// Table 5, flavor columns (same 1.8x function-delta factor).
constexpr ConfigEffect kFlavorEffects[] = {
    // generic (baseline)
    {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8800},
    // lowlatency
    {74, 103, 0, 1, 4, 5, 0, 0, 0, 0, 8800},
    // aws
    {3240, 590, 4, 483, 83, 19, 9, 4, 0, 0, 6400},
    // azure
    {6300, 1790, 18, 833, 257, 28, 39, 26, 0, 0, 5300},
    // gcp
    {574, 810, 2, 123, 68, 14, 0, 0, 0, 0, 8600},
};

}  // namespace

const ConfigEffect& ConfigEffectFor(Arch arch) {
  return kArchEffects[static_cast<size_t>(arch)];
}

const ConfigEffect& ConfigEffectFor(Flavor flavor) {
  return kFlavorEffects[static_cast<size_t>(flavor)];
}

}  // namespace depsurf
