// The measured evolution/configuration/compilation rates from the paper
// (Tables 3-6, Figures 5-6) that drive the statistical corpus. The analyzer
// re-derives these from binary images; the values here are the injection
// targets.
#ifndef DEPSURF_SRC_KERNELGEN_RATES_H_
#define DEPSURF_SRC_KERNELGEN_RATES_H_

#include <array>
#include <cstdint>

#include "src/kmodel/build_spec.h"
#include "src/kmodel/kernel_version.h"

namespace depsurf {

// The 17 Ubuntu kernel versions of the study (v4.4 .. v6.8); index order is
// chronological. LTS versions: 4.4, 4.15, 5.4, 5.15, 6.8.
inline constexpr int kNumVersions = 17;
extern const std::array<KernelVersion, kNumVersions> kStudyVersions;
extern const std::array<KernelVersion, 5> kLtsVersions;

// Index of a version in kStudyVersions; -1 if absent.
int VersionIndex(KernelVersion version);
bool IsLts(KernelVersion version);

// GCC major used by Ubuntu for each study version (x86 generic).
int GccMajorFor(KernelVersion version);

// Per-transition source evolution rates (fractions, not percents), derived
// from Table 3's LTS aggregates distributed over the intra-LTS transitions.
struct TransitionRates {
  double func_add;
  double func_remove;
  double func_change;
  double struct_add;
  double struct_remove;
  double struct_change;
  double tracept_add;
  double tracept_remove;
  double tracept_change;
  double syscall_add;
};

// Rates for transition i -> i+1 (16 entries).
const TransitionRates& TransitionRatesAt(int from_version_index);

// Probability that a single function/struct/tracepoint change includes each
// mutation kind (Table 4; kinds can co-occur, so they sum to > 1).
struct ChangeBreakdown {
  double param_added = 0.55;
  double param_removed = 0.42;
  double param_reordered = 0.20;
  double param_type_changed = 0.25;
  double return_type_changed = 0.16;
  double field_added = 0.74;
  double field_removed = 0.41;
  double field_type_changed = 0.34;
  double tracept_event_changed = 0.89;
  double tracept_func_changed = 0.46;
};
inline constexpr ChangeBreakdown kChangeBreakdown{};

// Base populations at v4.4, x86 generic, scale 1.0 (source level; the
// visible surface is smaller after full inlining).
struct BasePopulation {
  uint32_t funcs = 58500;
  uint32_t structs = 6200;
  uint32_t tracepoints = 502;
  uint32_t syscalls = 326;
};
inline constexpr BasePopulation kBasePopulation{};

// Configuration effects at v5.4 relative to x86 generic (Table 5): removal
// and addition counts at scale 1.0 plus changed-construct counts.
struct ConfigEffect {
  uint32_t func_removed;
  uint32_t func_added;
  uint32_t func_changed;
  uint32_t struct_removed;
  uint32_t struct_added;
  uint32_t struct_changed;
  uint32_t tracept_removed;
  uint32_t tracept_added;
  uint32_t syscall_removed;
  uint32_t syscall_added;
  uint32_t config_options;
};
const ConfigEffect& ConfigEffectFor(Arch arch);
const ConfigEffect& ConfigEffectFor(Flavor flavor);

// Compilation model parameters (Figures 5-6, Table 6).
struct CompilationRates {
  double static_fraction = 0.655;          // statics among source functions
  double header_defined_fraction = 0.115;  // of statics: defined in a header
  double full_inline_static = 0.58;        // statics fully inlined
  double selective_inline = 0.14;          // of out-of-line functions
  // Transformation probabilities for out-of-line functions, per suffix.
  double transform_constprop = 0.045;
  double transform_isra = 0.055;           // 0 on arm32 (disabled there)
  double transform_part = 0.025;
  double transform_cold = 0.035;           // gcc >= 8 only
  double collision_static_static = 0.016;  // of statics: share another static's name
  double collision_static_global = 0.0007; // of statics: share a global's name
};
inline constexpr CompilationRates kCompilationRates{};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_RATES_H_
