#include "src/kernelgen/configurator.h"

#include <cmath>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// v5.4 x86-generic baselines the Table 5 deltas are expressed against.
constexpr double kFuncBaseline = 73000;  // source-level functions
constexpr double kStructBaseline = 8400;
constexpr double kTraceptBaseline = 752;

StructSpec MakePtRegs(std::vector<FieldSpec> fields) {
  StructSpec spec;
  spec.name = "pt_regs";
  spec.fields = std::move(fields);
  return spec;
}

}  // namespace

StructSpec PtRegsFor(Arch arch) {
  switch (arch) {
    case Arch::kX86:
      return MakePtRegs({{"r15", "unsigned long"}, {"r14", "unsigned long"},
                         {"r13", "unsigned long"}, {"r12", "unsigned long"},
                         {"bp", "unsigned long"},  {"bx", "unsigned long"},
                         {"r11", "unsigned long"}, {"r10", "unsigned long"},
                         {"r9", "unsigned long"},  {"r8", "unsigned long"},
                         {"ax", "unsigned long"},  {"cx", "unsigned long"},
                         {"dx", "unsigned long"},  {"si", "unsigned long"},
                         {"di", "unsigned long"},  {"orig_ax", "unsigned long"},
                         {"ip", "unsigned long"},  {"cs", "unsigned long"},
                         {"flags", "unsigned long"}, {"sp", "unsigned long"},
                         {"ss", "unsigned long"}});
    case Arch::kArm64:
      return MakePtRegs({{"regs", "unsigned long[31]"}, {"sp", "unsigned long"},
                         {"pc", "unsigned long"}, {"pstate", "unsigned long"}});
    case Arch::kArm32:
      return MakePtRegs({{"uregs", "unsigned long[18]"}});
    case Arch::kPpc:
      return MakePtRegs({{"gpr", "unsigned long[32]"}, {"nip", "unsigned long"},
                         {"msr", "unsigned long"}, {"orig_gpr3", "unsigned long"},
                         {"ctr", "unsigned long"}, {"link", "unsigned long"}});
    case Arch::kRiscv:
      return MakePtRegs({{"epc", "unsigned long"}, {"ra", "unsigned long"},
                         {"sp", "unsigned long"},  {"gp", "unsigned long"},
                         {"tp", "unsigned long"},  {"a0", "unsigned long"},
                         {"a1", "unsigned long"},  {"a2", "unsigned long"},
                         {"a3", "unsigned long"},  {"a4", "unsigned long"},
                         {"a5", "unsigned long"},  {"a6", "unsigned long"},
                         {"a7", "unsigned long"}});
  }
  return MakePtRegs({});
}

KernelModel::KernelModel(uint64_t seed, double scale, ScriptedCatalog catalog)
    : seed_(seed), scale_(scale), evolution_(seed, scale), catalog_(std::move(catalog)) {}

bool KernelModel::RemovedByConfig(uint64_t key, uint32_t removed_count, uint32_t baseline,
                                  bool driver_bias, bool is_driver, uint64_t salt) const {
  if (removed_count == 0) {
    return false;
  }
  double p = static_cast<double>(removed_count) / static_cast<double>(baseline);
  if (driver_bias) {
    // Cloud flavors strip drivers ~3x more aggressively; the weights keep
    // the expected total constant for a ~27.5% driver share.
    p *= is_driver ? 2.4 : 0.47;
  }
  Prng prng(HashCombine({seed_, 0xcf9, key, salt}));
  return prng.NextBool(p);
}

Result<ConfiguredKernel> KernelModel::Configure(const BuildSpec& build) const {
  int vi = VersionIndex(build.version);
  if (vi < 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "not a study version: " + build.version.ToString());
  }
  const ConfigEffect& arch_effect = ConfigEffectFor(build.arch);
  const ConfigEffect& flavor_effect = ConfigEffectFor(build.flavor);
  bool flavor_bias = build.flavor == Flavor::kAws || build.flavor == Flavor::kAzure;
  uint64_t arch_salt = static_cast<uint64_t>(build.arch) + 1;
  uint64_t flavor_salt = (static_cast<uint64_t>(build.flavor) + 1) << 8;

  ConfiguredKernel out;
  out.build = build;
  // Flavor option counts are defined relative to x86; arch counts apply to
  // the generic flavor of that arch.
  out.config_options = build.flavor == Flavor::kGeneric
                           ? ConfigEffectFor(build.arch).config_options
                           : ConfigEffectFor(build.flavor).config_options;

  const NameCorpus& names = evolution_.names();

  // ---- Functions: background population.
  evolution_.ForEachFunc(vi, [&](uint64_t ordinal, const FuncSpec& spec) {
    bool is_driver = names.IsDriverSubsystem(ordinal);
    if (RemovedByConfig(ordinal, static_cast<uint32_t>(arch_effect.func_removed * scale_),
                        static_cast<uint32_t>(kFuncBaseline * scale_), false, is_driver,
                        arch_salt)) {
      return;
    }
    if (RemovedByConfig(ordinal, static_cast<uint32_t>(flavor_effect.func_removed * scale_),
                        static_cast<uint32_t>(kFuncBaseline * scale_), flavor_bias, is_driver,
                        flavor_salt)) {
      return;
    }
    FuncSpec configured = spec;
    // Rare config-driven signature change (Table 5's Δ row).
    Prng chg(HashCombine({seed_, 0xacf6, ordinal, arch_salt}));
    if (chg.NextBool(arch_effect.func_changed / kFuncBaseline)) {
      if (!configured.params.empty()) {
        configured.params.back().type = "unsigned long";
      } else {
        configured.params.push_back({"cfg", "unsigned long"});
      }
    }
    out.funcs.push_back(std::move(configured));
  });
  // Arch/flavor-specific additional functions.
  auto add_extra_funcs = [&](uint32_t count, uint64_t space) {
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t ordinal = (space << 32) | i;
      FuncSpec spec;
      spec.name = StrFormat("%s_%s", space < 0x100 ? ArchName(build.arch)
                                                   : FlavorName(build.flavor),
                            names.Name(NameKind::kFunc, ordinal).c_str());
      spec.return_type = "int";
      spec.params = {{"arg", "void *"}};
      spec.linkage = (ordinal % 3 == 0) ? Linkage::kGlobal : Linkage::kStatic;
      spec.decl_file = StrFormat("arch/%s/kernel/extra%u.c", ArchName(build.arch), i % 7);
      spec.decl_line = 10 + i % 400;
      out.funcs.push_back(std::move(spec));
    }
  };
  if (build.arch != Arch::kX86) {
    add_extra_funcs(static_cast<uint32_t>(arch_effect.func_added * scale_), arch_salt);
  }
  if (build.flavor != Flavor::kGeneric) {
    add_extra_funcs(static_cast<uint32_t>(flavor_effect.func_added * scale_), 0x100 | flavor_salt);
  }
  // LSM hooks and kfuncs: small special populations (unscaled — the real
  // kernel has ~150 LSM hooks and ~100 kfuncs). LSM hooks churn at ~9%
  // added / 2% removed per LTS; kfuncs appear from v5.8 and only ever get
  // removed or renamed, never re-typed (§4.1).
  {
    auto alive = [&](uint64_t salt, uint64_t ordinal, int born, double remove_rate) {
      if (born > vi) {
        return false;
      }
      for (int t = born; t < vi; ++t) {
        Prng prng(HashCombine({seed_, salt, ordinal, static_cast<uint64_t>(t)}));
        if (prng.NextBool(remove_rate)) {
          return false;
        }
      }
      return true;
    };
    // 140 base hooks + ~3 per version; names are stable per ordinal.
    uint32_t lsm_total = 140 + 3 * kNumVersions;
    for (uint32_t i = 0; i < lsm_total; ++i) {
      int born = i < 140 ? 0 : static_cast<int>((i - 140) / 3);
      if (!alive(0x15a, i, born, 0.005)) {
        continue;
      }
      FuncSpec spec;
      spec.name = StrFormat("security_%s", names.Name(NameKind::kFunc, 0x100000000ull + i).c_str());
      spec.return_type = "int";
      spec.params = {{"obj", "void *"}, {"flags", "unsigned int"}};
      spec.linkage = Linkage::kGlobal;
      spec.decl_file = "security/security.c";
      spec.decl_line = 100 + i;
      spec.is_lsm_hook = true;
      spec.inline_hint = InlineHint::kNever;
      out.funcs.push_back(std::move(spec));
    }
    // kfuncs ramp from v5.8 (index 9) to ~100 at v6.8.
    int v58 = 9;
    if (vi >= v58) {
      uint32_t kfunc_total = static_cast<uint32_t>(12 * (kNumVersions - v58));
      for (uint32_t i = 0; i < kfunc_total; ++i) {
        int born = v58 + static_cast<int>(i / 12);
        if (!alive(0xbf, i, born, 0.01)) {
          continue;
        }
        FuncSpec spec;
        spec.name = StrFormat("bpf_%s", names.Name(NameKind::kFunc, 0x200000000ull + i).c_str());
        spec.return_type = "int";
        spec.params = {{"p", "struct task_struct *"}};
        spec.linkage = Linkage::kGlobal;
        spec.decl_file = "kernel/bpf/helpers.c";
        spec.decl_line = 2000 + i;
        spec.is_kfunc = true;
        spec.inline_hint = InlineHint::kNever;
        out.funcs.push_back(std::move(spec));
      }
    }
  }

  // Scripted functions.
  for (const ScriptedFunc& sf : catalog_.funcs) {
    const FuncSpec* spec = sf.SpecAt(build.version);
    if (spec == nullptr) {
      continue;
    }
    FuncSpec configured = *spec;
    if (sf.forced_transform.has_value() && sf.forced_transform_range.Contains(build.version)) {
      configured.forced_transform = *sf.forced_transform;
      configured.forced_transform_min_gcc = sf.forced_transform_min_gcc;
    }
    auto it = sf.arch_behavior.find(build.arch);
    if (it != sf.arch_behavior.end()) {
      if (it->second.absent) {
        continue;
      }
      if (it->second.inline_hint.has_value()) {
        configured.inline_hint = *it->second.inline_hint;
      }
      if (it->second.duplicate_per_tu) {
        configured.linkage = Linkage::kStatic;
        configured.defined_in_header = true;
      }
    }
    out.funcs.push_back(std::move(configured));
  }

  // ---- Structs.
  evolution_.ForEachStruct(vi, [&](uint64_t ordinal, const StructSpec& spec) {
    bool is_driver = names.IsDriverSubsystem(ordinal);
    if (RemovedByConfig(ordinal, static_cast<uint32_t>(arch_effect.struct_removed * scale_),
                        static_cast<uint32_t>(kStructBaseline * scale_), false, is_driver,
                        arch_salt) ||
        RemovedByConfig(ordinal, static_cast<uint32_t>(flavor_effect.struct_removed * scale_),
                        static_cast<uint32_t>(kStructBaseline * scale_), flavor_bias, is_driver,
                        flavor_salt)) {
      return;
    }
    StructSpec configured = spec;
    Prng chg(HashCombine({seed_, 0x5cf, ordinal, arch_salt ^ flavor_salt}));
    double p_change = (arch_effect.struct_changed + flavor_effect.struct_changed) /
                      kStructBaseline;
    if (chg.NextBool(p_change)) {
      // The task_struct pattern: an #ifdef'd field present only here.
      configured.fields.push_back({"cfg_extra", "unsigned long"});
    }
    out.structs.push_back(std::move(configured));
  });
  auto add_extra_structs = [&](uint32_t count, uint64_t space) {
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t ordinal = (space << 32) | i;
      StructSpec spec;
      spec.name = StrFormat("%s_%s", space < 0x100 ? ArchName(build.arch)
                                                   : FlavorName(build.flavor),
                            names.Name(NameKind::kStruct, ordinal).c_str());
      spec.fields = {{"base", "unsigned long"}, {"len", "unsigned int"}};
      out.structs.push_back(std::move(spec));
    }
  };
  if (build.arch != Arch::kX86) {
    add_extra_structs(static_cast<uint32_t>(arch_effect.struct_added * scale_), arch_salt);
  }
  if (build.flavor != Flavor::kGeneric) {
    add_extra_structs(static_cast<uint32_t>(flavor_effect.struct_added * scale_),
                      0x100 | flavor_salt);
  }
  for (const ScriptedStruct& ss : catalog_.structs) {
    const StructSpec* spec = ss.SpecAt(build.version);
    if (spec != nullptr) {
      out.structs.push_back(*spec);
    }
  }
  out.pt_regs = PtRegsFor(build.arch);
  out.structs.push_back(out.pt_regs);

  // ---- Tracepoints (configuration changes presence, never definitions).
  evolution_.ForEachTracepoint(vi, [&](uint64_t ordinal, const TracepointSpec& spec) {
    bool is_driver = names.IsDriverSubsystem(ordinal);
    if (RemovedByConfig(ordinal, static_cast<uint32_t>(arch_effect.tracept_removed * scale_),
                        static_cast<uint32_t>(kTraceptBaseline * scale_), false, is_driver,
                        arch_salt) ||
        RemovedByConfig(ordinal, static_cast<uint32_t>(flavor_effect.tracept_removed * scale_),
                        static_cast<uint32_t>(kTraceptBaseline * scale_), flavor_bias, is_driver,
                        flavor_salt)) {
      return;
    }
    out.tracepoints.push_back(spec);
  });
  auto add_extra_tracepoints = [&](uint32_t count, uint64_t space) {
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t ordinal = (space << 32) | i;
      TracepointSpec spec;
      spec.event_name = StrFormat("%s_%s", space < 0x100 ? ArchName(build.arch)
                                                         : FlavorName(build.flavor),
                                  names.TracepointEvent(ordinal).c_str());
      spec.class_name = spec.event_name;
      spec.func_params = {{"arg0", "unsigned long"}};
      spec.event_fields = {{"val", "unsigned long"}};
      spec.fmt = "\"val=%lu\", REC->val";
      out.tracepoints.push_back(std::move(spec));
    }
  };
  if (build.arch != Arch::kX86) {
    add_extra_tracepoints(static_cast<uint32_t>(arch_effect.tracept_added * scale_), arch_salt);
  }
  if (build.flavor != Flavor::kGeneric) {
    add_extra_tracepoints(static_cast<uint32_t>(flavor_effect.tracept_added * scale_),
                          0x100 | flavor_salt);
  }
  for (const ScriptedTracepoint& st : catalog_.tracepoints) {
    const TracepointSpec* spec = st.SpecAt(build.version);
    if (spec != nullptr) {
      out.tracepoints.push_back(*spec);
    }
  }

  // ---- Syscalls (unscaled: the table is small and fully real-named).
  out.syscalls = SyscallTableFor(build.version, build.arch);
  out.compat_syscalls = CompatSyscallCount(build.version, build.arch);
  return out;
}

}  // namespace depsurf
