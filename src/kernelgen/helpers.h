// Per-kernel-version BPF helper availability.
//
// Helper functions are the other half of the kernel interface an eBPF
// program depends on ("The eBPF Runtime in the Linux Kernel" catalogs
// them): each helper id is hardwired into `call` instructions at compile
// time, and loading fails on kernels that predate the helper. The table
// below is a curated slice of the real uapi helper list (ids match
// enum bpf_func_id) with the release that introduced each one; kernelgen
// embeds the available subset into every synthesized image as a
// `.bpf_helpers` section, and the analyzer checks call sites against it.
#ifndef DEPSURF_SRC_KERNELGEN_HELPERS_H_
#define DEPSURF_SRC_KERNELGEN_HELPERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kmodel/kernel_version.h"

namespace depsurf {

struct HelperSpec {
  uint32_t id = 0;
  const char* name = "";
  KernelVersion introduced;
};

// The full curated catalog, ordered by id.
const std::vector<HelperSpec>& HelperCatalog();

// nullptr when the id is not in the catalog.
const HelperSpec* FindHelper(uint32_t id);

// False for unknown ids or helpers introduced after `version`.
bool HelperAvailable(uint32_t id, KernelVersion version);

// Ids of every helper available at `version`, ascending (what kernelgen
// writes into the image's .bpf_helpers section).
std::vector<uint32_t> AvailableHelperIds(KernelVersion version);

// Section name kernelgen writes and the surface extractor reads.
inline constexpr char kBpfHelpersSection[] = ".bpf_helpers";

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_HELPERS_H_
