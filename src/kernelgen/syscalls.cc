#include "src/kernelgen/syscalls.h"

#include <set>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// The x86_64 table as of the study window (real names; order defines the
// slot number). 326 entries exist at v4.4; later additions are listed in
// kAdditions below.
constexpr const char* kBaseSyscalls[] = {
    "read", "write", "open", "close", "stat", "fstat", "lstat", "poll", "lseek", "mmap",
    "mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "ioctl",
    "pread64", "pwrite64", "readv", "writev", "access", "pipe", "select", "sched_yield",
    "mremap", "msync", "mincore", "madvise", "shmget", "shmat", "shmctl", "dup", "dup2",
    "pause", "nanosleep", "getitimer", "alarm", "setitimer", "getpid", "sendfile", "socket",
    "connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg", "shutdown", "bind",
    "listen", "getsockname", "getpeername", "socketpair", "setsockopt", "getsockopt", "clone",
    "fork", "vfork", "execve", "exit", "wait4", "kill", "uname", "semget", "semop", "semctl",
    "shmdt", "msgget", "msgsnd", "msgrcv", "msgctl", "fcntl", "flock", "fsync", "fdatasync",
    "truncate", "ftruncate", "getdents", "getcwd", "chdir", "fchdir", "rename", "mkdir",
    "rmdir", "creat", "link", "unlink", "symlink", "readlink", "chmod", "fchmod", "chown",
    "fchown", "lchown", "umask", "gettimeofday", "getrlimit", "getrusage", "sysinfo", "times",
    "ptrace", "getuid", "syslog", "getgid", "setuid", "setgid", "geteuid", "getegid",
    "setpgid", "getppid", "getpgrp", "setsid", "setreuid", "setregid", "getgroups",
    "setgroups", "setresuid", "getresuid", "setresgid", "getresgid", "getpgid", "setfsuid",
    "setfsgid", "getsid", "capget", "capset", "rt_sigpending", "rt_sigtimedwait",
    "rt_sigqueueinfo", "rt_sigsuspend", "sigaltstack", "utime", "mknod", "uselib", "personality",
    "ustat", "statfs", "fstatfs", "sysfs", "getpriority", "setpriority", "sched_setparam",
    "sched_getparam", "sched_setscheduler", "sched_getscheduler", "sched_get_priority_max",
    "sched_get_priority_min", "sched_rr_get_interval", "mlock", "munlock", "mlockall",
    "munlockall", "vhangup", "modify_ldt", "pivot_root", "sysctl", "prctl", "arch_prctl",
    "adjtimex", "setrlimit", "chroot", "sync", "acct", "settimeofday", "mount", "umount2",
    "swapon", "swapoff", "reboot", "sethostname", "setdomainname", "iopl", "ioperm",
    "create_module", "init_module", "delete_module", "get_kernel_syms", "query_module",
    "quotactl", "nfsservctl", "getpmsg", "putpmsg", "afs_syscall", "tuxcall", "security",
    "gettid", "readahead", "setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
    "fgetxattr", "listxattr", "llistxattr", "flistxattr", "removexattr", "lremovexattr",
    "fremovexattr", "tkill", "time", "futex", "sched_setaffinity", "sched_getaffinity",
    "set_thread_area", "io_setup", "io_destroy", "io_getevents", "io_submit", "io_cancel",
    "get_thread_area", "lookup_dcookie", "epoll_create", "epoll_ctl_old", "epoll_wait_old",
    "remap_file_pages", "getdents64", "set_tid_address", "restart_syscall", "semtimedop",
    "fadvise64", "timer_create", "timer_settime", "timer_gettime", "timer_getoverrun",
    "timer_delete", "clock_settime", "clock_gettime", "clock_getres", "clock_nanosleep",
    "exit_group", "epoll_wait", "epoll_ctl", "tgkill", "utimes", "vserver", "mbind",
    "set_mempolicy", "get_mempolicy", "mq_open", "mq_unlink", "mq_timedsend", "mq_timedreceive",
    "mq_notify", "mq_getsetattr", "kexec_load", "waitid", "add_key", "request_key", "keyctl",
    "ioprio_set", "ioprio_get", "inotify_init", "inotify_add_watch", "inotify_rm_watch",
    "migrate_pages", "openat", "mkdirat", "mknodat", "fchownat", "futimesat", "newfstatat",
    "unlinkat", "renameat", "linkat", "symlinkat", "readlinkat", "fchmodat", "faccessat",
    "pselect6", "ppoll", "unshare", "set_robust_list", "get_robust_list", "splice", "tee",
    "sync_file_range", "vmsplice", "move_pages", "utimensat", "epoll_pwait", "signalfd",
    "timerfd_create", "eventfd", "fallocate", "timerfd_settime", "timerfd_gettime", "accept4",
    "signalfd4", "eventfd2", "epoll_create1", "dup3", "pipe2", "inotify_init1", "preadv",
    "pwritev", "rt_tgsigqueueinfo", "perf_event_open", "recvmmsg", "fanotify_init",
    "fanotify_mark", "prlimit64", "name_to_handle_at", "open_by_handle_at", "clock_adjtime",
    "syncfs", "sendmmsg", "setns", "getcpu", "process_vm_readv", "process_vm_writev", "kcmp",
    "finit_module", "sched_setattr", "sched_getattr", "renameat2", "seccomp", "getrandom",
    "memfd_create", "kexec_file_load", "bpf", "execveat", "userfaultfd", "membarrier",
    "mlock2", "copy_file_range", "preadv2", "pwritev2",
};
constexpr size_t kNumBaseSyscalls = sizeof(kBaseSyscalls) / sizeof(kBaseSyscalls[0]);

struct SyscallAddition {
  KernelVersion version;
  const char* name;
};

constexpr SyscallAddition kAdditions[] = {
    {{4, 8}, "pkey_mprotect"},   {{4, 8}, "pkey_alloc"},      {{4, 8}, "pkey_free"},
    {{4, 13}, "statx"},          {{5, 0}, "io_pgetevents"},   {{5, 0}, "rseq"},
    {{5, 3}, "clone3"},          {{5, 3}, "pidfd_send_signal"}, {{5, 3}, "io_uring_setup"},
    {{5, 3}, "io_uring_enter"},  {{5, 3}, "io_uring_register"}, {{5, 8}, "openat2"},
    {{5, 8}, "pidfd_getfd"},     {{5, 8}, "faccessat2"},      {{5, 11}, "close_range"},
    {{5, 11}, "epoll_pwait2"},   {{5, 11}, "process_madvise"}, {{5, 13}, "landlock_create_ruleset"},
    {{5, 13}, "landlock_add_rule"}, {{5, 13}, "landlock_restrict_self"}, {{5, 13}, "mount_setattr"},
    {{5, 15}, "memfd_secret"},   {{5, 15}, "process_mrelease"}, {{5, 19}, "futex_waitv"},
    {{6, 2}, "set_mempolicy_home_node"}, {{6, 5}, "cachestat"}, {{6, 8}, "fchmodat2"},
    {{6, 8}, "futex_wake"},      {{6, 8}, "futex_wait"},      {{6, 8}, "map_shadow_stack"},
};

// Syscalls that newer architectures (arm64/riscv) deliberately omit because
// *at/clone replacements exist.
constexpr const char* kLegacyOnly[] = {
    "open",    "creat",    "link",     "unlink",  "mknod",   "chmod",    "chown",   "lchown",
    "mkdir",   "rmdir",    "rename",   "symlink", "readlink", "stat",    "lstat",   "access",
    "pipe",    "dup2",     "pause",    "alarm",   "fork",    "vfork",    "getpgrp", "utime",
    "utimes",  "futimesat", "select",  "poll",    "epoll_create", "epoll_wait", "inotify_init",
    "eventfd", "signalfd", "sysfs",    "uselib",  "ustat",   "getdents", "time",
    "modify_ldt", "arch_prctl", "iopl", "ioperm", "set_thread_area", "get_thread_area",
};
constexpr size_t kNumLegacyOnly = sizeof(kLegacyOnly) / sizeof(kLegacyOnly[0]);

// Extra arch-specific syscalls beyond the generic table.
uint32_t ArchExtraCount(Arch arch) {
  switch (arch) {
    case Arch::kX86:
      return 0;
    case Arch::kArm64:
      return 2;  // e.g. arm64-specific memory tagging controls
    case Arch::kArm32:
      return 74;  // OABI compatibility calls
    case Arch::kPpc:
      return 23;  // spu_run & friends
    case Arch::kRiscv:
      return 2;
  }
  return 0;
}

bool IsLegacyOnly(const std::string& name) {
  for (const char* legacy : kLegacyOnly) {
    if (name == legacy) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* SyscallSymbolPrefix(Arch arch) {
  switch (arch) {
    case Arch::kX86:
      return "__x64_sys_";
    case Arch::kArm64:
      return "__arm64_sys_";
    case Arch::kArm32:
      return "sys_";
    case Arch::kPpc:
      return "sys_";
    case Arch::kRiscv:
      return "__riscv_sys_";
  }
  return "sys_";
}

std::vector<SyscallSpec> SyscallTableFor(KernelVersion version, Arch arch) {
  std::vector<SyscallSpec> table;
  int nr = 0;
  auto add = [&](const std::string& name) {
    SyscallSpec spec;
    spec.name = name;
    spec.nr = nr++;
    // Most file/process calls have compat shims on 64-bit targets.
    spec.has_compat = HashString(name) % 100 < 60;
    table.push_back(std::move(spec));
  };

  for (size_t i = 0; i < kNumBaseSyscalls; ++i) {
    std::string name = kBaseSyscalls[i];
    if (arch == Arch::kArm64 || arch == Arch::kRiscv) {
      if (IsLegacyOnly(name)) {
        ++nr;  // slot exists but is wired to sys_ni_syscall
        continue;
      }
    }
    if (arch == Arch::kPpc || arch == Arch::kArm32) {
      // A handful of x86-isms are absent elsewhere.
      if (name == "modify_ldt" || name == "arch_prctl" || name == "iopl" || name == "ioperm" ||
          name == "set_thread_area" || name == "get_thread_area") {
        ++nr;
        continue;
      }
      if (arch == Arch::kArm32 &&
          (name == "pkey_mprotect" || name == "migrate_pages" || name == "move_pages")) {
        ++nr;
        continue;
      }
    }
    add(name);
  }
  for (const SyscallAddition& addition : kAdditions) {
    if (version >= addition.version) {
      if ((arch == Arch::kArm64 || arch == Arch::kRiscv) && IsLegacyOnly(addition.name)) {
        ++nr;
        continue;
      }
      add(addition.name);
    }
  }
  for (uint32_t i = 0; i < ArchExtraCount(arch); ++i) {
    add(StrFormat("%s_arch%u", ArchName(arch), i));
  }
  return table;
}

uint32_t CompatSyscallCount(KernelVersion version, Arch arch) {
  if (arch == Arch::kArm32) {
    return 0;  // native 32-bit
  }
  uint32_t n = 0;
  for (const SyscallSpec& spec : SyscallTableFor(version, Arch::kX86)) {
    if (spec.has_compat) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> AllSyscallNames() {
  std::set<std::string> names;
  for (Arch arch : kAllArches) {
    for (const SyscallSpec& spec : SyscallTableFor(KernelVersion{6, 8}, arch)) {
      names.insert(spec.name);
    }
  }
  // Legacy calls absent at 6.8 on new arches still exist on x86.
  for (size_t i = 0; i < kNumBaseSyscalls; ++i) {
    names.insert(kBaseSyscalls[i]);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace depsurf
