// Serializes a CompiledImage into a binary kernel image: an ELF container
// holding .text symbols, .BTF types, DWARF-lite debug info, the ftrace
// event records (pointer-chased through data sections, like a real
// vmlinux), and sys_call_table.
//
// The DepSurf analyzer consumes only these bytes; nothing of the semantic
// model crosses over.
#ifndef DEPSURF_SRC_KERNELGEN_IMAGE_BUILDER_H_
#define DEPSURF_SRC_KERNELGEN_IMAGE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/kernelgen/compiler.h"
#include "src/util/error.h"

namespace depsurf {

// Section names the analyzer looks for (mirroring real kernel images where
// one exists).
inline constexpr char kSectionBtf[] = ".BTF";
inline constexpr char kSectionDwarfAbbrev[] = ".sdwarf_abbrev";
inline constexpr char kSectionDwarfInfo[] = ".sdwarf_info";
inline constexpr char kSectionFtraceEvents[] = "__ftrace_events";
inline constexpr char kSymStartFtrace[] = "__start_ftrace_events";
inline constexpr char kSymStopFtrace[] = "__stop_ftrace_events";
inline constexpr char kSymSyscallTable[] = "sys_call_table";
// Prefixes of machinery the analyzer must recognize.
inline constexpr char kTraceFuncPrefix[] = "trace_event_raw_event_";
inline constexpr char kTraceStructPrefix[] = "trace_event_raw_";

Result<std::vector<uint8_t>> BuildKernelImage(const CompiledImage& image);

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_IMAGE_BUILDER_H_
