#include "src/kernelgen/name_corpus.h"

#include <array>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

constexpr std::array kSubsystems = {
    "ext4",  "xfs",   "btrfs", "f2fs",  "nfs",   "vfs",   "blk",    "nvme",  "scsi",
    "mm",    "sched", "tcp",   "udp",   "net",   "dev",   "pci",    "usb",   "kvm",
    "proc",  "sysfs", "cgroup", "bpf",  "perf",  "ftrace", "rcu",   "irq",   "timer",
    "futex", "signal", "ipc",  "snd",   "drm",   "i915",  "amdgpu", "iouring", "crypto",
    "acpi",  "thermal", "mmc", "rdma",
};

// Subsystems that cloud flavors (AWS/Azure) strip aggressively.
constexpr std::array kDriverSubsystems = {
    "snd", "drm", "i915", "amdgpu", "usb", "mmc", "thermal", "acpi", "rdma", "scsi", "pci",
};

constexpr std::array kVerbs = {
    "init",   "alloc", "free",   "read",    "write",    "get",     "put",     "set",
    "update", "insert", "remove", "lookup",  "find",     "map",     "unmap",   "start",
    "stop",   "submit", "complete", "queue", "flush",    "sync",    "lock",    "unlock",
    "enable", "disable", "register", "unregister", "probe", "attach",
};

constexpr std::array kNouns = {
    "page",   "folio", "inode", "dentry", "request", "bio",    "skb",    "sock",
    "task",   "vma",   "cache", "buffer", "entry",   "node",   "ctx",    "state",
    "info",   "data",  "ops",   "wq",     "ring",    "desc",   "frame",  "packet",
    "conn",   "session", "group", "policy", "event",  "slot",   "block",  "extent",
    "segment", "range", "region", "chunk", "pool",    "bucket", "record", "handle",
};

constexpr std::array kStructSuffixes = {
    "info", "state", "ctx", "data", "ops", "desc", "params", "attr", "req", "conf",
};

constexpr std::array kFileNouns = {
    "core", "main", "inode", "super", "file", "ioctl", "sysfs", "debug", "util", "queue",
};

// Directory prefix per subsystem group.
const char* DirFor(std::string_view subsys) {
  if (subsys == "ext4" || subsys == "xfs" || subsys == "btrfs" || subsys == "f2fs" ||
      subsys == "nfs" || subsys == "vfs" || subsys == "proc" || subsys == "sysfs" ||
      subsys == "iouring") {
    return "fs";
  }
  if (subsys == "tcp" || subsys == "udp" || subsys == "net" || subsys == "rdma") {
    return "net";
  }
  if (subsys == "mm") {
    return "mm";
  }
  if (subsys == "sched" || subsys == "rcu" || subsys == "irq" || subsys == "timer" ||
      subsys == "futex" || subsys == "signal" || subsys == "ipc" || subsys == "cgroup" ||
      subsys == "bpf" || subsys == "perf" || subsys == "ftrace" || subsys == "kvm") {
    return "kernel";
  }
  if (subsys == "blk" || subsys == "nvme" || subsys == "scsi" || subsys == "mmc") {
    return "block";
  }
  return "drivers";
}

}  // namespace

std::string NameCorpus::Subsystem(uint64_t ordinal) const {
  uint64_t h = HashCombine({seed_, 0x5151, ordinal});
  return kSubsystems[h % kSubsystems.size()];
}

bool NameCorpus::IsDriverSubsystem(uint64_t ordinal) const {
  std::string subsys = Subsystem(ordinal);
  for (const char* d : kDriverSubsystems) {
    if (subsys == d) {
      return true;
    }
  }
  return false;
}

std::string NameCorpus::Name(NameKind kind, uint64_t ordinal) const {
  std::string subsys = Subsystem(ordinal);
  uint64_t h = HashCombine({seed_, static_cast<uint64_t>(kind), 0x2222, ordinal});
  switch (kind) {
    case NameKind::kFunc: {
      const char* verb = kVerbs[h % kVerbs.size()];
      const char* noun = kNouns[(h >> 16) % kNouns.size()];
      // The hex ordinal suffix guarantees uniqueness against both pool
      // wrap-around and scripted real kernel names.
      return subsys + "_" + verb + "_" + noun +
             StrFormat("_%llx", static_cast<unsigned long long>(ordinal));
    }
    case NameKind::kStruct: {
      const char* noun = kNouns[ordinal % kNouns.size()];
      const char* suffix = kStructSuffixes[(ordinal / kNouns.size()) % kStructSuffixes.size()];
      return subsys + "_" + noun + "_" + suffix +
             StrFormat("_%llx", static_cast<unsigned long long>(ordinal));
    }
    case NameKind::kTracepoint:
      return TracepointEvent(ordinal);
    case NameKind::kSyscall: {
      const char* verb = kVerbs[ordinal % kVerbs.size()];
      return std::string(verb) + StrFormat("%llu", static_cast<unsigned long long>(ordinal));
    }
  }
  return "unnamed";
}

std::string NameCorpus::SourceFile(uint64_t ordinal) const {
  std::string subsys = Subsystem(ordinal);
  uint64_t h = HashCombine({seed_, 0x3333, ordinal});
  const char* file = kFileNouns[h % kFileNouns.size()];
  return std::string(DirFor(subsys)) + "/" + subsys + "/" + file + ".c";
}

std::string NameCorpus::HeaderFile(uint64_t ordinal) const {
  return "include/linux/" + Subsystem(ordinal) + ".h";
}

std::string NameCorpus::TracepointEvent(uint64_t ordinal) const {
  std::string subsys = Subsystem(ordinal);
  uint64_t h = HashCombine({seed_, 0x4444, ordinal});
  const char* verb = kVerbs[h % kVerbs.size()];
  const char* noun = kNouns[(h >> 16) % kNouns.size()];
  return subsys + "_" + verb + "_" + noun +
         StrFormat("_%llx", static_cast<unsigned long long>(ordinal));
}

std::string NameCorpus::TracepointClass(uint64_t ordinal) const {
  // Background events get their own class. (Real kernels share classes —
  // the curated block_rq lineage models that — but shared synthetic classes
  // would alias event structs across independently-evolving events and
  // distort the change statistics.)
  return TracepointEvent(ordinal) + "_cls";
}

}  // namespace depsurf
