#include "src/kernelgen/helpers.h"

namespace depsurf {

const std::vector<HelperSpec>& HelperCatalog() {
  // Ids and introduction points follow the kernel's enum bpf_func_id /
  // bpf-helpers(7). Curated to the helpers tracing tools actually call;
  // the corpus spans v4.4..v6.x, so the interesting breakpoints are the
  // post-4.4 entries.
  static const std::vector<HelperSpec> kCatalog = {
      {1, "bpf_map_lookup_elem", {3, 19}},
      {2, "bpf_map_update_elem", {3, 19}},
      {3, "bpf_map_delete_elem", {3, 19}},
      {4, "bpf_probe_read", {4, 1}},
      {5, "bpf_ktime_get_ns", {4, 1}},
      {6, "bpf_trace_printk", {4, 1}},
      {8, "bpf_get_smp_processor_id", {4, 1}},
      {14, "bpf_get_current_pid_tgid", {4, 2}},
      {15, "bpf_get_current_uid_gid", {4, 2}},
      {16, "bpf_get_current_comm", {4, 2}},
      {22, "bpf_perf_event_read", {4, 3}},
      {25, "bpf_perf_event_output", {4, 4}},
      {27, "bpf_get_stackid", {4, 6}},
      {35, "bpf_get_current_task", {4, 8}},
      {36, "bpf_probe_write_user", {4, 8}},
      {45, "bpf_probe_read_str", {4, 11}},
      {67, "bpf_get_stack", {4, 18}},
      {93, "bpf_spin_lock", {5, 1}},
      {94, "bpf_spin_unlock", {5, 1}},
      {112, "bpf_probe_read_user", {5, 5}},
      {113, "bpf_probe_read_kernel", {5, 5}},
      {114, "bpf_probe_read_user_str", {5, 5}},
      {115, "bpf_probe_read_kernel_str", {5, 5}},
      {125, "bpf_ktime_get_boot_ns", {5, 7}},
      {130, "bpf_ringbuf_reserve", {5, 8}},
      {131, "bpf_ringbuf_submit", {5, 8}},
      {132, "bpf_ringbuf_discard", {5, 8}},
      {133, "bpf_ringbuf_output", {5, 8}},
      {141, "bpf_snprintf_btf", {5, 10}},
      {158, "bpf_task_storage_get", {5, 11}},
      {176, "bpf_kallsyms_lookup_name", {5, 16}},
      {211, "bpf_cgrp_storage_get", {6, 2}},
  };
  return kCatalog;
}

const HelperSpec* FindHelper(uint32_t id) {
  for (const HelperSpec& spec : HelperCatalog()) {
    if (spec.id == id) {
      return &spec;
    }
  }
  return nullptr;
}

bool HelperAvailable(uint32_t id, KernelVersion version) {
  const HelperSpec* spec = FindHelper(id);
  return spec != nullptr && spec->introduced <= version;
}

std::vector<uint32_t> AvailableHelperIds(KernelVersion version) {
  std::vector<uint32_t> out;
  for (const HelperSpec& spec : HelperCatalog()) {
    if (spec.introduced <= version) {
      out.push_back(spec.id);
    }
  }
  return out;
}

}  // namespace depsurf
