// The 25-image study corpus (§3.2): 17 x86-generic versions, plus v5.4 on
// 4 additional architectures and 4 additional flavors.
#ifndef DEPSURF_SRC_KERNELGEN_CORPUS_H_
#define DEPSURF_SRC_KERNELGEN_CORPUS_H_

#include <vector>

#include "src/kernelgen/rates.h"
#include "src/kmodel/build_spec.h"

namespace depsurf {

// x86/generic build for a study version (GCC major from the Ubuntu table).
BuildSpec MakeBuild(KernelVersion version, Arch arch = Arch::kX86,
                    Flavor flavor = Flavor::kGeneric);

// All 17 x86-generic builds, chronological.
std::vector<BuildSpec> X86GenericSeries();

// The 21 images used for dependency-set analysis (Figure 4, Tables 7-8):
// the x86 series plus v5.4 on arm64/arm32/ppc/riscv.
std::vector<BuildSpec> DependencyAnalysisCorpus();

// The full 25-image corpus (adds the v5.4 flavor builds).
std::vector<BuildSpec> StudyCorpus();

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_CORPUS_H_
