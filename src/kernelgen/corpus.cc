#include "src/kernelgen/corpus.h"

namespace depsurf {

BuildSpec MakeBuild(KernelVersion version, Arch arch, Flavor flavor) {
  BuildSpec spec;
  spec.version = version;
  spec.arch = arch;
  spec.flavor = flavor;
  spec.gcc_major = GccMajorFor(version);
  return spec;
}

std::vector<BuildSpec> X86GenericSeries() {
  std::vector<BuildSpec> out;
  out.reserve(kNumVersions);
  for (KernelVersion version : kStudyVersions) {
    out.push_back(MakeBuild(version));
  }
  return out;
}

std::vector<BuildSpec> DependencyAnalysisCorpus() {
  std::vector<BuildSpec> out = X86GenericSeries();
  constexpr KernelVersion kV54{5, 4};
  for (Arch arch : {Arch::kArm64, Arch::kArm32, Arch::kPpc, Arch::kRiscv}) {
    out.push_back(MakeBuild(kV54, arch));
  }
  return out;
}

std::vector<BuildSpec> StudyCorpus() {
  std::vector<BuildSpec> out = DependencyAnalysisCorpus();
  constexpr KernelVersion kV54{5, 4};
  for (Flavor flavor : {Flavor::kLowLatency, Flavor::kAws, Flavor::kAzure, Flavor::kGcp}) {
    out.push_back(MakeBuild(kV54, Arch::kX86, flavor));
  }
  return out;
}

}  // namespace depsurf
