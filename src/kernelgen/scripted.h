// Scripted constructs: kernel constructs with explicit per-version histories.
//
// Two sources feed this catalog:
//   1. Curated lineages reproducing real kernel evolution the paper analyzes
//      (the biotop and readahead case studies, vfs examples, block-layer
//      structs, the block_io_{start,done} tracepoints, ...).
//   2. Profile constructs: synthesized dependencies for the 53-program
//      corpus, each with a MismatchProfile saying which mismatch classes it
//      must exhibit across the study images (used to reproduce Table 7).
// Scripted constructs are exempt from statistical mutation.
#ifndef DEPSURF_SRC_KERNELGEN_SCRIPTED_H_
#define DEPSURF_SRC_KERNELGEN_SCRIPTED_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/kmodel/build_spec.h"
#include "src/kmodel/kernel_version.h"
#include "src/kmodel/spec.h"

namespace depsurf {

// Half-open version interval [from, until).
struct VersionRange {
  KernelVersion from{0, 0};
  KernelVersion until{999, 0};

  bool Contains(KernelVersion v) const { return v >= from && v < until; }
};

// Per-architecture behavior override for a scripted function.
struct ArchBehavior {
  bool absent = false;
  std::optional<InlineHint> inline_hint;
  bool duplicate_per_tu = false;  // e.g. static-inline-in-header under !NUMA
};

struct ScriptedFunc {
  struct Stage {
    VersionRange range;
    FuncSpec spec;
  };
  std::vector<Stage> stages;
  std::map<Arch, ArchBehavior> arch_behavior;
  // Force a compiler transformation suffix within a version range.
  std::optional<std::string> forced_transform;  // "isra"/"constprop"/...
  VersionRange forced_transform_range;
  int forced_transform_min_gcc = 0;

  // The spec in effect at `v`, or nullptr if absent there.
  const FuncSpec* SpecAt(KernelVersion v) const;
};

struct ScriptedStruct {
  struct Stage {
    VersionRange range;
    StructSpec spec;
  };
  std::vector<Stage> stages;
  const StructSpec* SpecAt(KernelVersion v) const;
};

struct ScriptedTracepoint {
  struct Stage {
    VersionRange range;
    TracepointSpec spec;
  };
  std::vector<Stage> stages;
  const TracepointSpec* SpecAt(KernelVersion v) const;
};

// Which mismatch classes a synthesized program dependency must exhibit
// across the study images (drives Table 7/8 reproduction).
struct MismatchProfile {
  bool absent = false;       // Ø: added at v5.8 (absent on older images)
  bool changed = false;      // Δ: signature/field change at v5.8
  bool full_inline = false;  // F: fully inlined from v5.13
  bool selective = false;    // S: selectively inlined wherever present
  bool transformed = false;  // T: compiler-suffixed on gcc >= 9 images
  bool duplicated = false;   // D: header-defined static, multiple instances

  bool Any() const {
    return absent || changed || full_inline || selective || transformed || duplicated;
  }
};

struct ScriptedCatalog {
  std::vector<ScriptedFunc> funcs;
  std::vector<ScriptedStruct> structs;
  std::vector<ScriptedTracepoint> tracepoints;

  // Registration helpers used by the curated catalog and by profile
  // construct synthesis.
  ScriptedFunc& AddFunc(ScriptedFunc func);
  ScriptedStruct& AddStruct(ScriptedStruct st);
  ScriptedTracepoint& AddTracepoint(ScriptedTracepoint tp);

  // Synthesizes a function with the given mismatch profile (see
  // MismatchProfile field comments for the version breakpoints used).
  void AddProfileFunc(const std::string& name, const MismatchProfile& profile);
  // Synthesizes a struct with `stable_fields` always-present fields plus
  // one absent-field (added v5.8) per `absent_fields` and one changed-field
  // (type widened at v5.8) per `changed_fields`. If `struct_absent`, the
  // whole struct only exists from v5.8.
  void AddProfileStruct(const std::string& name, int stable_fields, int absent_fields,
                        int changed_fields, bool struct_absent);
  void AddProfileTracepoint(const std::string& name, bool absent, bool changed);

  const ScriptedFunc* FindFunc(const std::string& name, KernelVersion v) const;

  // Appends another catalog's constructs (used to merge the program-corpus
  // additions into the curated catalog).
  void Merge(ScriptedCatalog other);
};

// The curated real-kernel lineages (biotop, readahead, vfs, block layer,
// task_struct, ...). Deterministic; safe to call repeatedly.
ScriptedCatalog BuildCuratedCatalog();

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_SCRIPTED_H_
