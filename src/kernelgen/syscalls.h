// The system-call universe: real Linux syscall names with per-version
// introduction and per-architecture availability (Table 5's native-syscall
// and traceability analysis).
#ifndef DEPSURF_SRC_KERNELGEN_SYSCALLS_H_
#define DEPSURF_SRC_KERNELGEN_SYSCALLS_H_

#include <vector>

#include "src/kmodel/build_spec.h"
#include "src/kmodel/spec.h"

namespace depsurf {

// Native syscall table for one build (name -> slot number), already
// filtered for the architecture.
std::vector<SyscallSpec> SyscallTableFor(KernelVersion version, Arch arch);

// Symbol-name prefix of syscall entry points on this architecture
// ("__x64_sys_", "__arm64_sys_", plain "sys_", ...).
const char* SyscallSymbolPrefix(Arch arch);

// Number of 32-bit compat entry points present on this build (0 where the
// architecture has no compat layer).
uint32_t CompatSyscallCount(KernelVersion version, Arch arch);

// Every syscall name that ever exists in the study window (the union across
// versions and architectures); used to build program dependency sets.
std::vector<std::string> AllSyscallNames();

}  // namespace depsurf

#endif  // DEPSURF_SRC_KERNELGEN_SYSCALLS_H_
