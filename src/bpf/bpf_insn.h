// Minimal BPF ISA: the 8-byte instruction format and the opcode subset the
// corpus emits and the analyzer reasons about (memory loads/stores with
// offsets, helper calls, conditional/unconditional jumps, exit, and the
// two-slot 64-bit immediate load).
//
// Wire layout of one slot (little-endian, matching the kernel's
// struct bpf_insn):
//   u8  opcode
//   u8  registers (dst in the low nibble, src in the high nibble)
//   s16 offset    (memory displacement or jump target, in slots)
//   s32 imm
// BPF_LD_IMM64 occupies two consecutive slots; the second slot carries the
// upper 32 immediate bits and must otherwise be zero.
#ifndef DEPSURF_SRC_BPF_BPF_INSN_H_
#define DEPSURF_SRC_BPF_BPF_INSN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/byte_buffer.h"
#include "src/util/diagnostic_ledger.h"
#include "src/util/error.h"

namespace depsurf {

// Instruction classes (low three opcode bits).
inline constexpr uint8_t kBpfClassLd = 0x00;
inline constexpr uint8_t kBpfClassLdx = 0x01;
inline constexpr uint8_t kBpfClassSt = 0x02;
inline constexpr uint8_t kBpfClassStx = 0x03;
inline constexpr uint8_t kBpfClassAlu = 0x04;
inline constexpr uint8_t kBpfClassJmp = 0x05;
inline constexpr uint8_t kBpfClassJmp32 = 0x06;
inline constexpr uint8_t kBpfClassAlu64 = 0x07;

// The opcodes the encoder emits (values match the kernel ISA).
inline constexpr uint8_t kOpLdImm64 = 0x18;   // dst = imm64 (two slots)
inline constexpr uint8_t kOpLdxMemB = 0x71;   // dst = *(u8*)(src + off)
inline constexpr uint8_t kOpLdxMemH = 0x69;   // dst = *(u16*)(src + off)
inline constexpr uint8_t kOpLdxMemW = 0x61;   // dst = *(u32*)(src + off)
inline constexpr uint8_t kOpLdxMemDw = 0x79;  // dst = *(u64*)(src + off)
inline constexpr uint8_t kOpStxMemW = 0x63;   // *(u32*)(dst + off) = src
inline constexpr uint8_t kOpStxMemDw = 0x7b;  // *(u64*)(dst + off) = src
inline constexpr uint8_t kOpMov64Imm = 0xb7;  // dst = imm
inline constexpr uint8_t kOpJa = 0x05;        // pc += off
inline constexpr uint8_t kOpJeqImm = 0x15;    // if dst == imm: pc += off
inline constexpr uint8_t kOpJneImm = 0x55;    // if dst != imm: pc += off
inline constexpr uint8_t kOpCall = 0x85;      // call helper imm
inline constexpr uint8_t kOpExit = 0x95;

struct BpfInsn {
  uint8_t opcode = 0;
  uint8_t dst_reg = 0;  // r0..r10
  uint8_t src_reg = 0;
  int16_t offset = 0;  // memory displacement, or jump delta in slots
  int32_t imm = 0;
  int32_t imm_hi = 0;  // upper immediate half; only meaningful for LD_IMM64

  bool operator==(const BpfInsn&) const = default;

  uint8_t cls() const { return opcode & 0x07; }
  // LD_IMM64 occupies two 8-byte slots on the wire.
  bool IsWide() const { return opcode == kOpLdImm64; }
  bool IsLoad() const {
    return opcode == kOpLdxMemB || opcode == kOpLdxMemH || opcode == kOpLdxMemW ||
           opcode == kOpLdxMemDw;
  }
  bool IsStore() const { return opcode == kOpStxMemW || opcode == kOpStxMemDw; }
  bool IsCall() const { return opcode == kOpCall; }
  bool IsExit() const { return opcode == kOpExit; }
  bool IsCondJump() const { return opcode == kOpJeqImm || opcode == kOpJneImm; }
  bool IsUncondJump() const { return opcode == kOpJa; }
  bool IsJump() const { return IsCondJump() || IsUncondJump(); }
  int64_t Imm64() const {
    return static_cast<int64_t>((static_cast<uint64_t>(static_cast<uint32_t>(imm_hi)) << 32) |
                                static_cast<uint32_t>(imm));
  }
  // Number of 8-byte slots this instruction occupies (1 or 2).
  size_t Slots() const { return IsWide() ? 2 : 1; }

  // Human-readable one-liner ("r2 = *(u64 *)(r1 +0)"); used by findings.
  std::string ToString() const;
};

// Convenience constructors matching the emitter's needs.
BpfInsn LoadField(uint8_t dst, uint8_t src, int16_t offset, uint8_t size_op = kOpLdxMemDw);
BpfInsn LoadImm64(uint8_t dst, int64_t value);
BpfInsn MovImm(uint8_t dst, int32_t value);
BpfInsn CallHelperInsn(int32_t helper_id);
BpfInsn JumpAlways(int16_t delta);
BpfInsn JumpEqImm(uint8_t dst, int32_t value, int16_t delta);
BpfInsn JumpNeImm(uint8_t dst, int32_t value, int16_t delta);
BpfInsn ExitInsn();

// True when `opcode` is one this codec understands.
bool IsKnownOpcode(uint8_t opcode);

// Serializes instructions to wire bytes (8 bytes per slot, little-endian).
std::vector<uint8_t> EncodeInsns(const std::vector<BpfInsn>& insns);

// Decodes a program section's instruction stream. Malformed input (trailing
// partial slot, unknown opcode, LD_IMM64 missing its second slot) degrades:
// the well-formed prefix is kept, one kBpf ledger entry records the byte
// offset of the first bad slot, and decoding stops. With a null ledger the
// event is silently dropped (the prefix is still returned).
std::vector<BpfInsn> DecodeInsns(ByteReader reader, DiagnosticLedger* ledger);

// Total wire size in bytes once encoded.
size_t EncodedSize(const std::vector<BpfInsn>& insns);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPF_BPF_INSN_H_
