// Convenience builder for eBPF objects: declares hooks and struct/field
// accesses, materializing the program-side BTF and CO-RE relocation records
// the way clang's BPF backend would.
#ifndef DEPSURF_SRC_BPF_BPF_BUILDER_H_
#define DEPSURF_SRC_BPF_BPF_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/kmodel/type_lang.h"

namespace depsurf {

class BpfObjectBuilder {
 public:
  explicit BpfObjectBuilder(std::string name);

  // ---- Hooks. Each attachment creates one program.
  BpfObjectBuilder& AttachKprobe(const std::string& func);
  BpfObjectBuilder& AttachKretprobe(const std::string& func);
  BpfObjectBuilder& AttachFentry(const std::string& func);
  BpfObjectBuilder& AttachFexit(const std::string& func);
  BpfObjectBuilder& AttachTracepoint(const std::string& category, const std::string& event);
  BpfObjectBuilder& AttachRawTracepoint(const std::string& event);
  BpfObjectBuilder& AttachSyscall(const std::string& name, bool exit = false);
  BpfObjectBuilder& AttachLsm(const std::string& hook);

  // ---- Struct/field accesses (CO-RE).
  // Declares that the program reads `struct_name.field_name`, expecting
  // `field_type` (type-language string). Creates the struct in the program
  // BTF if needed and appends a field-byte-offset relocation.
  Status AccessField(const std::string& struct_name, const std::string& field_name,
                     const TypeStr& field_type);
  // bpf_core_field_exists-style presence check.
  Status CheckFieldExists(const std::string& struct_name, const std::string& field_name,
                          const TypeStr& field_type);
  // References a struct without reading any field (pointer casts,
  // bpf_core_type_exists): the struct becomes a dependency with no fields.
  Status TouchStruct(const std::string& struct_name);
  // Chained access a->b->c: one relocation recording every intermediate
  // (struct, field). Each element is {struct, field, field_type}; the field
  // type of non-terminal elements must be a pointer to the next struct.
  struct ChainLink {
    std::string struct_name;
    std::string field_name;
    TypeStr field_type;
  };
  Status AccessChain(const std::vector<ChainLink>& chain);

  // ---- Instruction stream. Accesses emit instructions into the most
  // recently attached program (relocations record the prog_index/insn_off
  // binding); with no program attached yet, relocations stay unbound.

  // Emits `call helper_id` (no relocation; the analyzer checks the id
  // against the kernel's helper availability table).
  BpfObjectBuilder& CallHelper(uint32_t helper_id);
  // Emits a load at a hardcoded displacement with NO CO-RE relocation —
  // the implicit struct-layout dependency the analyzer flags as
  // raw-offset-deref.
  BpfObjectBuilder& RawOffsetDeref(int16_t offset);
  // Opens a bpf_core_field_exists guard: emits the exists relocation plus a
  // conditional branch that skips the guarded region when the field is
  // absent. Every access emitted before the matching EndGuard() is
  // dominated by the check. Guards nest.
  Status BeginGuard(const std::string& struct_name, const std::string& field_name,
                    const TypeStr& field_type);
  Status EndGuard();

  BpfObject Build();

 private:
  Status Access(const std::string& struct_name, const std::string& field_name,
                const TypeStr& field_type, CoreRelocKind kind);
  // Index of `field_name` in `struct_name`, adding the field if absent.
  Result<size_t> EnsureField(const std::string& struct_name, const std::string& field_name,
                             const TypeStr& field_type);
  // Appends to the current (last attached) program; no-op without one.
  void Emit(BpfInsn insn);
  // Byte offset the next emitted instruction will land at, and the binding
  // for a relocation that patches it (kRelocUnbound without a program).
  uint32_t NextInsnOffset() const;
  void BindReloc(CoreReloc& reloc) const;

  BpfObject object_;
  TypeLowering lowering_;
  int next_program_ = 0;
  // struct name -> ordered field specs (program-side expectations).
  std::map<std::string, std::vector<FieldSpec>> struct_fields_;
  // Open guards: (program index, index of the branch insn to patch).
  struct OpenGuard {
    size_t prog_index;
    size_t branch_insn;
  };
  std::vector<OpenGuard> guard_stack_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPF_BPF_BUILDER_H_
