// eBPF object model: what DepSurf reads from a compiled eBPF .o file.
//
// Two signals matter for dependency analysis (§3.4 of the paper):
//   1. Program section names encode the hooks ("kprobe/do_unlinkat",
//      "tracepoint/block/block_rq_issue", "tracepoint/syscalls/
//      sys_enter_openat", "lsm/file_open", ...).
//   2. The .BTF/.BTF.ext sections carry the program's expected types and
//      the CO-RE field relocation records, from which struct/field
//      dependencies (including intermediate chain members) are extracted.
#ifndef DEPSURF_SRC_BPF_BPF_OBJECT_H_
#define DEPSURF_SRC_BPF_BPF_OBJECT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/bpf/bpf_insn.h"
#include "src/btf/btf.h"
#include "src/util/diagnostic_ledger.h"
#include "src/util/error.h"

namespace depsurf {

enum class HookKind : uint8_t {
  kKprobe,
  kKretprobe,
  kTracepoint,     // classic: category/event
  kRawTracepoint,  // attaches to the tracing function
  kSyscallEnter,   // tracepoint/syscalls/sys_enter_*
  kSyscallExit,
  kFentry,
  kFexit,
  kLsm,
  kPerfEvent,
};

const char* HookKindName(HookKind kind);

struct Hook {
  HookKind kind;
  // Function name, tracepoint event, or syscall name depending on kind.
  std::string target;
  // For kTracepoint: the category ("block", "sched", ...).
  std::string category;

  bool operator==(const Hook&) const = default;
};

// Parses a program section name into a hook; nullopt for non-program
// sections (".text", ".maps", licensing, ...).
std::optional<Hook> ParseHookSection(const std::string& section_name);
// Inverse of ParseHookSection (canonical spelling).
std::string HookSectionName(const Hook& hook);

// CO-RE field relocation kinds (subset of the kernel's enum bpf_core_relo_kind).
enum class CoreRelocKind : uint32_t {
  kFieldByteOffset = 0,
  kFieldExists = 3,
  kFieldSize = 1,
  kTypeExists = 8,  // struct referenced without field access
};

// "field_byte_offset" / "field_size" / "field_exists" / "type_exists".
const char* CoreRelocKindName(CoreRelocKind kind);

// prog_index value for a relocation not bound to any instruction (legacy
// objects written before instruction streams existed, or synthetic records).
inline constexpr uint32_t kRelocUnbound = 0xffffffffu;

struct CoreReloc {
  BtfTypeId root_type_id = 0;  // in the program's own BTF
  std::string access_str;      // "0:1:2": deref, then member indices
  CoreRelocKind kind = CoreRelocKind::kFieldByteOffset;
  // Instruction binding: which program, and the byte offset (into that
  // program's section) of the instruction this record patches.
  uint32_t prog_index = kRelocUnbound;
  uint32_t insn_off = 0;

  bool operator==(const CoreReloc&) const = default;
};

struct BpfProgram {
  std::string name;  // program (function) name
  Hook hook;
  std::vector<BpfInsn> insns;  // the program's instruction stream
};

struct BpfObject {
  std::string name;  // tool name ("biotop", ...)
  std::vector<BpfProgram> programs;
  TypeGraph btf;  // the program's expected kernel types
  std::vector<CoreReloc> relocs;
};

// One struct/field access recovered from a relocation: the chain of
// (struct, field) pairs traversed by the access string.
struct FieldAccess {
  std::string struct_name;
  std::string field_name;
  std::string field_type;  // rendered type, e.g. "struct gendisk *"
  bool exists_check = false;  // bpf_core_field_exists-style guard

  bool operator==(const FieldAccess&) const = default;
};

// Walks a relocation through the program BTF, returning every intermediate
// (struct, field) pair (the paper records the full chain for a[1].b->c).
Result<std::vector<FieldAccess>> ResolveReloc(const TypeGraph& btf, const CoreReloc& reloc);

// ---- Serialization to/from ELF .o bytes --------------------------------

// Section/record constants for the .BTF.ext-style relocation section.
inline constexpr char kBtfSection[] = ".BTF";
inline constexpr char kBtfExtSection[] = ".BTF.ext";
inline constexpr uint32_t kBtfExtMagic = 0xeBF1;

Result<std::vector<uint8_t>> WriteBpfObject(const BpfObject& object);
// Parses an object from ELF bytes. With a non-null `ledger`, malformed
// instruction streams degrade per program (the well-formed prefix is kept
// and a kBpf entry records the failing byte offset) instead of failing the
// whole object; .BTF / .BTF.ext problems remain fatal either way.
Result<BpfObject> ParseBpfObject(std::vector<uint8_t> bytes,
                                 DiagnosticLedger* ledger = nullptr);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPF_BPF_OBJECT_H_
