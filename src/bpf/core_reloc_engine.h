// The CO-RE relocation engine: the *loader* side of Compile Once - Run
// Everywhere (paper §7). At load time, libbpf matches each relocation's
// local (program-side) type against the target kernel's BTF by name,
// re-resolves the member access chain by *field name* (not index), and
// patches the instruction with the target offset. Relocation fails when the
// kernel lacks the type or field — unless the access is a
// bpf_core_field_exists query, which resolves to 0/1 instead of failing.
//
// This module reproduces that algorithm over our BTF graphs, which lets the
// test suite and the ablation bench demonstrate the exact failure modes the
// paper's "relocation error" consequence refers to.
#ifndef DEPSURF_SRC_BPF_CORE_RELOC_ENGINE_H_
#define DEPSURF_SRC_BPF_CORE_RELOC_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/btf/btf.h"
#include "src/util/error.h"

namespace depsurf {

enum class RelocOutcome : uint8_t {
  kResolved,       // offset (or size/existence) patched successfully
  kFieldMissing,   // kernel struct exists but lacks the field -> load fails
  kTypeMissing,    // kernel lacks the root type entirely -> load fails
  kGuardedAbsent,  // field_exists query answered "0" -> program handles it
};

struct RelocResult {
  RelocOutcome outcome = RelocOutcome::kResolved;
  // Meaning depends on the relocation kind: byte offset for
  // kFieldByteOffset, byte size for kFieldSize, 0/1 for kFieldExists and
  // kTypeExists.
  uint64_t value = 0;
  // Human-readable trail, e.g. "request::rq_disk @ +104".
  std::string detail;
};

// Resolves one relocation against the target kernel BTF.
// `local_btf` is the program's own BTF (where root_type_id lives).
Result<RelocResult> ResolveCoreReloc(const TypeGraph& local_btf, const CoreReloc& reloc,
                                     const TypeGraph& kernel_btf);

// Simulates loading the whole object against a kernel: resolves every
// relocation; the load succeeds iff none fails hard.
struct LoadResult {
  bool loaded = false;
  std::vector<RelocResult> relocs;  // parallel to object.relocs
  std::string failure;              // first hard failure, if any
};

LoadResult SimulateLoad(const BpfObject& object, const TypeGraph& kernel_btf);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPF_CORE_RELOC_ENGINE_H_
