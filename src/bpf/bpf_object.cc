#include "src/bpf/bpf_object.h"

#include "src/btf/btf_print.h"
#include "src/util/str_util.h"

namespace depsurf {

const char* HookKindName(HookKind kind) {
  switch (kind) {
    case HookKind::kKprobe:
      return "kprobe";
    case HookKind::kKretprobe:
      return "kretprobe";
    case HookKind::kTracepoint:
      return "tracepoint";
    case HookKind::kRawTracepoint:
      return "raw_tracepoint";
    case HookKind::kSyscallEnter:
      return "syscall_enter";
    case HookKind::kSyscallExit:
      return "syscall_exit";
    case HookKind::kFentry:
      return "fentry";
    case HookKind::kFexit:
      return "fexit";
    case HookKind::kLsm:
      return "lsm";
    case HookKind::kPerfEvent:
      return "perf_event";
  }
  return "?";
}

const char* CoreRelocKindName(CoreRelocKind kind) {
  switch (kind) {
    case CoreRelocKind::kFieldByteOffset:
      return "field_byte_offset";
    case CoreRelocKind::kFieldSize:
      return "field_size";
    case CoreRelocKind::kFieldExists:
      return "field_exists";
    case CoreRelocKind::kTypeExists:
      return "type_exists";
  }
  return "?";
}

std::optional<Hook> ParseHookSection(const std::string& section_name) {
  auto after = [&](std::string_view prefix) {
    return section_name.substr(prefix.size());
  };
  if (StartsWith(section_name, "kprobe/")) {
    return Hook{HookKind::kKprobe, after("kprobe/"), ""};
  }
  // libbpf's multi-attach variant targets the same functions.
  if (StartsWith(section_name, "kprobe.multi/")) {
    return Hook{HookKind::kKprobe, after("kprobe.multi/"), ""};
  }
  if (StartsWith(section_name, "kretprobe/")) {
    return Hook{HookKind::kKretprobe, after("kretprobe/"), ""};
  }
  if (StartsWith(section_name, "fentry/")) {
    return Hook{HookKind::kFentry, after("fentry/"), ""};
  }
  // Sleepable variant: same attach point, different program flags.
  if (StartsWith(section_name, "fentry.s/")) {
    return Hook{HookKind::kFentry, after("fentry.s/"), ""};
  }
  // fmod_ret shares fentry's attachment mechanism (function entry via the
  // BPF trampoline); for dependency purposes it is a function hook.
  if (StartsWith(section_name, "fmod_ret/")) {
    return Hook{HookKind::kFentry, after("fmod_ret/"), ""};
  }
  if (StartsWith(section_name, "fexit/")) {
    return Hook{HookKind::kFexit, after("fexit/"), ""};
  }
  if (StartsWith(section_name, "lsm/")) {
    return Hook{HookKind::kLsm, after("lsm/"), ""};
  }
  if (StartsWith(section_name, "lsm.s/")) {
    return Hook{HookKind::kLsm, after("lsm.s/"), ""};
  }
  if (StartsWith(section_name, "raw_tracepoint/") || StartsWith(section_name, "raw_tp/") ||
      StartsWith(section_name, "tp_btf/")) {
    std::string rest = section_name.substr(section_name.find('/') + 1);
    return Hook{HookKind::kRawTracepoint, rest, ""};
  }
  if (StartsWith(section_name, "tracepoint/") || StartsWith(section_name, "tp/")) {
    std::string rest = section_name.substr(section_name.find('/') + 1);
    size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      return std::nullopt;  // category/event required
    }
    std::string category = rest.substr(0, slash);
    std::string event = rest.substr(slash + 1);
    if (category == "syscalls") {
      if (StartsWith(event, "sys_enter_")) {
        return Hook{HookKind::kSyscallEnter, event.substr(10), "syscalls"};
      }
      if (StartsWith(event, "sys_exit_")) {
        return Hook{HookKind::kSyscallExit, event.substr(9), "syscalls"};
      }
      return std::nullopt;
    }
    return Hook{HookKind::kTracepoint, event, category};
  }
  if (StartsWith(section_name, "perf_event")) {
    return Hook{HookKind::kPerfEvent, "", ""};
  }
  return std::nullopt;
}

std::string HookSectionName(const Hook& hook) {
  switch (hook.kind) {
    case HookKind::kKprobe:
      return "kprobe/" + hook.target;
    case HookKind::kKretprobe:
      return "kretprobe/" + hook.target;
    case HookKind::kTracepoint:
      return "tracepoint/" + hook.category + "/" + hook.target;
    case HookKind::kRawTracepoint:
      return "raw_tracepoint/" + hook.target;
    case HookKind::kSyscallEnter:
      return "tracepoint/syscalls/sys_enter_" + hook.target;
    case HookKind::kSyscallExit:
      return "tracepoint/syscalls/sys_exit_" + hook.target;
    case HookKind::kFentry:
      return "fentry/" + hook.target;
    case HookKind::kFexit:
      return "fexit/" + hook.target;
    case HookKind::kLsm:
      return "lsm/" + hook.target;
    case HookKind::kPerfEvent:
      return "perf_event";
  }
  return "?";
}

Result<std::vector<FieldAccess>> ResolveReloc(const TypeGraph& btf, const CoreReloc& reloc) {
  std::vector<FieldAccess> out;
  std::vector<std::string> indices = SplitString(reloc.access_str, ':');
  if (indices.empty()) {
    return Error(ErrorCode::kMalformedData, "empty access string");
  }
  BtfTypeId current = btf.ResolveAliases(reloc.root_type_id);
  // The first index dereferences the root (usually "0"); subsequent
  // indices select members.
  for (size_t i = 1; i < indices.size(); ++i) {
    const BtfType* t = btf.Get(current);
    if (t == nullptr || (t->kind != BtfKind::kStruct && t->kind != BtfKind::kUnion)) {
      return Error(ErrorCode::kMalformedData,
                   "access chain does not traverse a struct: " + reloc.access_str);
    }
    size_t index = 0;
    for (char c : indices[i]) {
      if (c < '0' || c > '9') {
        return Error(ErrorCode::kMalformedData, "bad access index: " + indices[i]);
      }
      index = index * 10 + static_cast<size_t>(c - '0');
    }
    if (index >= t->members.size()) {
      return Error(ErrorCode::kMalformedData,
                   StrFormat("member %zu out of range in %s", index, t->name.c_str()));
    }
    const BtfMember& member = t->members[index];
    FieldAccess access;
    access.struct_name = t->name;
    access.field_name = member.name;
    access.field_type = TypeString(btf, member.type_id);
    access.exists_check = reloc.kind == CoreRelocKind::kFieldExists;
    out.push_back(std::move(access));
    // Follow pointers/aliases into the next aggregate.
    current = btf.ResolveAliases(member.type_id);
    const BtfType* next = btf.Get(current);
    if (next != nullptr && next->kind == BtfKind::kPtr) {
      current = btf.ResolveAliases(next->ref_type_id);
    }
  }
  return out;
}

}  // namespace depsurf
