#include "src/bpf/bpf_insn.h"

#include "src/util/str_util.h"

namespace depsurf {

namespace {

const char* LoadSizeName(uint8_t opcode) {
  switch (opcode) {
    case kOpLdxMemB:
      return "u8";
    case kOpLdxMemH:
      return "u16";
    case kOpLdxMemW:
      return "u32";
    case kOpLdxMemDw:
      return "u64";
    default:
      return "?";
  }
}

}  // namespace

std::string BpfInsn::ToString() const {
  switch (opcode) {
    case kOpLdImm64:
      return StrFormat("r%u = %lld ll", dst_reg, static_cast<long long>(Imm64()));
    case kOpLdxMemB:
    case kOpLdxMemH:
    case kOpLdxMemW:
    case kOpLdxMemDw:
      return StrFormat("r%u = *(%s *)(r%u %+d)", dst_reg, LoadSizeName(opcode), src_reg, offset);
    case kOpStxMemW:
      return StrFormat("*(u32 *)(r%u %+d) = r%u", dst_reg, offset, src_reg);
    case kOpStxMemDw:
      return StrFormat("*(u64 *)(r%u %+d) = r%u", dst_reg, offset, src_reg);
    case kOpMov64Imm:
      return StrFormat("r%u = %d", dst_reg, imm);
    case kOpJa:
      return StrFormat("goto %+d", offset);
    case kOpJeqImm:
      return StrFormat("if r%u == %d goto %+d", dst_reg, imm, offset);
    case kOpJneImm:
      return StrFormat("if r%u != %d goto %+d", dst_reg, imm, offset);
    case kOpCall:
      return StrFormat("call %d", imm);
    case kOpExit:
      return "exit";
    default:
      return StrFormat("op 0x%02x", opcode);
  }
}

BpfInsn LoadField(uint8_t dst, uint8_t src, int16_t offset, uint8_t size_op) {
  BpfInsn insn;
  insn.opcode = size_op;
  insn.dst_reg = dst;
  insn.src_reg = src;
  insn.offset = offset;
  return insn;
}

BpfInsn LoadImm64(uint8_t dst, int64_t value) {
  BpfInsn insn;
  insn.opcode = kOpLdImm64;
  insn.dst_reg = dst;
  insn.imm = static_cast<int32_t>(static_cast<uint64_t>(value) & 0xffffffffull);
  insn.imm_hi = static_cast<int32_t>(static_cast<uint64_t>(value) >> 32);
  return insn;
}

BpfInsn MovImm(uint8_t dst, int32_t value) {
  BpfInsn insn;
  insn.opcode = kOpMov64Imm;
  insn.dst_reg = dst;
  insn.imm = value;
  return insn;
}

BpfInsn CallHelperInsn(int32_t helper_id) {
  BpfInsn insn;
  insn.opcode = kOpCall;
  insn.imm = helper_id;
  return insn;
}

BpfInsn JumpAlways(int16_t delta) {
  BpfInsn insn;
  insn.opcode = kOpJa;
  insn.offset = delta;
  return insn;
}

BpfInsn JumpEqImm(uint8_t dst, int32_t value, int16_t delta) {
  BpfInsn insn;
  insn.opcode = kOpJeqImm;
  insn.dst_reg = dst;
  insn.imm = value;
  insn.offset = delta;
  return insn;
}

BpfInsn JumpNeImm(uint8_t dst, int32_t value, int16_t delta) {
  BpfInsn insn;
  insn.opcode = kOpJneImm;
  insn.dst_reg = dst;
  insn.imm = value;
  insn.offset = delta;
  return insn;
}

BpfInsn ExitInsn() {
  BpfInsn insn;
  insn.opcode = kOpExit;
  return insn;
}

bool IsKnownOpcode(uint8_t opcode) {
  switch (opcode) {
    case kOpLdImm64:
    case kOpLdxMemB:
    case kOpLdxMemH:
    case kOpLdxMemW:
    case kOpLdxMemDw:
    case kOpStxMemW:
    case kOpStxMemDw:
    case kOpMov64Imm:
    case kOpJa:
    case kOpJeqImm:
    case kOpJneImm:
    case kOpCall:
    case kOpExit:
      return true;
    default:
      return false;
  }
}

std::vector<uint8_t> EncodeInsns(const std::vector<BpfInsn>& insns) {
  ByteWriter writer(Endian::kLittle);
  for (const BpfInsn& insn : insns) {
    writer.WriteU8(insn.opcode);
    writer.WriteU8(static_cast<uint8_t>((insn.dst_reg & 0x0f) | (insn.src_reg << 4)));
    writer.WriteU16(static_cast<uint16_t>(insn.offset));
    writer.WriteU32(static_cast<uint32_t>(insn.imm));
    if (insn.IsWide()) {
      writer.WriteU8(0);
      writer.WriteU8(0);
      writer.WriteU16(0);
      writer.WriteU32(static_cast<uint32_t>(insn.imm_hi));
    }
  }
  return writer.TakeBytes();
}

size_t EncodedSize(const std::vector<BpfInsn>& insns) {
  size_t slots = 0;
  for (const BpfInsn& insn : insns) {
    slots += insn.Slots();
  }
  return slots * 8;
}

std::vector<BpfInsn> DecodeInsns(ByteReader reader, DiagnosticLedger* ledger) {
  std::vector<BpfInsn> out;
  auto degrade = [&](size_t offset, std::string message) {
    if (ledger != nullptr) {
      ledger->AddAt(DiagSeverity::kDegraded, DiagSubsystem::kBpf, ErrorCode::kMalformedData,
                    offset, std::move(message));
    }
  };
  while (!reader.AtEnd()) {
    size_t insn_off = reader.offset();
    if (reader.remaining() < 8) {
      degrade(insn_off, StrFormat("trailing partial instruction slot (%zu bytes)",
                                  reader.remaining()));
      break;
    }
    BpfInsn insn;
    insn.opcode = *reader.ReadU8();
    uint8_t regs = *reader.ReadU8();
    insn.dst_reg = regs & 0x0f;
    insn.src_reg = regs >> 4;
    insn.offset = static_cast<int16_t>(*reader.ReadU16());
    insn.imm = static_cast<int32_t>(*reader.ReadU32());
    if (!IsKnownOpcode(insn.opcode)) {
      degrade(insn_off, StrFormat("unknown opcode 0x%02x; kept %zu decoded instruction(s)",
                                  insn.opcode, out.size()));
      break;
    }
    if (insn.IsWide()) {
      if (reader.remaining() < 8) {
        degrade(insn_off, "ld_imm64 missing its second slot");
        break;
      }
      (void)*reader.ReadU8();
      (void)*reader.ReadU8();
      (void)*reader.ReadU16();
      insn.imm_hi = static_cast<int32_t>(*reader.ReadU32());
    }
    out.push_back(insn);
  }
  return out;
}

}  // namespace depsurf
