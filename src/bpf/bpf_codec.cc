// ELF serialization of BpfObject (WriteBpfObject / ParseBpfObject).
#include <map>

#include "src/bpf/bpf_insn.h"
#include "src/bpf/bpf_object.h"
#include "src/btf/btf_codec.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_writer.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// .BTF.ext layout (simplified but binary): u32 magic, u32 reloc count,
// u32 string-section length, then per record {u32 type_id, u32 kind,
// u32 access offset, u32 prog_index, u32 insn_off}, then the string
// section. prog_index/insn_off bind the record to the instruction it
// patches (kRelocUnbound when the record has no instruction).
constexpr size_t kBtfExtRecordSize = 20;

std::vector<uint8_t> EncodeBtfExt(const std::vector<CoreReloc>& relocs) {
  ByteWriter strings(Endian::kLittle);
  strings.WriteU8(0);
  std::map<std::string, uint32_t> offsets;
  auto intern = [&](const std::string& s) {
    auto it = offsets.find(s);
    if (it != offsets.end()) {
      return it->second;
    }
    uint32_t off = static_cast<uint32_t>(strings.size());
    strings.WriteCString(s);
    offsets[s] = off;
    return off;
  };
  ByteWriter records(Endian::kLittle);
  for (const CoreReloc& reloc : relocs) {
    records.WriteU32(reloc.root_type_id);
    records.WriteU32(static_cast<uint32_t>(reloc.kind));
    records.WriteU32(intern(reloc.access_str));
    records.WriteU32(reloc.prog_index);
    records.WriteU32(reloc.insn_off);
  }
  ByteWriter out(Endian::kLittle);
  out.WriteU32(kBtfExtMagic);
  out.WriteU32(static_cast<uint32_t>(relocs.size()));
  out.WriteU32(static_cast<uint32_t>(strings.size()));
  const auto& rec_bytes = records.bytes();
  out.WriteBytes(rec_bytes.data(), rec_bytes.size());
  const auto& str_bytes = strings.bytes();
  out.WriteBytes(str_bytes.data(), str_bytes.size());
  return out.TakeBytes();
}

Result<std::vector<CoreReloc>> DecodeBtfExt(ByteReader reader) {
  DEPSURF_ASSIGN_OR_RETURN(magic, reader.ReadU32());
  if (magic != kBtfExtMagic) {
    return Error(ErrorCode::kMalformedData, "BTF.ext magic mismatch");
  }
  DEPSURF_ASSIGN_OR_RETURN(count, reader.ReadU32());
  DEPSURF_ASSIGN_OR_RETURN(str_len, reader.ReadU32());
  uint64_t records_size = static_cast<uint64_t>(count) * kBtfExtRecordSize;
  if (records_size + str_len + 12 > reader.size()) {
    return Error(ErrorCode::kMalformedData, "BTF.ext truncated");
  }
  DEPSURF_ASSIGN_OR_RETURN(strings, reader.Slice(12 + records_size, str_len));
  std::vector<CoreReloc> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CoreReloc reloc;
    DEPSURF_ASSIGN_OR_RETURN(type_id, reader.ReadU32());
    reloc.root_type_id = type_id;
    DEPSURF_ASSIGN_OR_RETURN(kind, reader.ReadU32());
    if (kind != 0 && kind != 1 && kind != 3 && kind != 8) {
      return Error(ErrorCode::kUnsupported, StrFormat("reloc kind %u", kind));
    }
    reloc.kind = static_cast<CoreRelocKind>(kind);
    DEPSURF_ASSIGN_OR_RETURN(str_off, reader.ReadU32());
    DEPSURF_ASSIGN_OR_RETURN(access, strings.ReadCStringAt(str_off));
    reloc.access_str = std::move(access);
    DEPSURF_ASSIGN_OR_RETURN(prog_index, reader.ReadU32());
    reloc.prog_index = prog_index;
    DEPSURF_ASSIGN_OR_RETURN(insn_off, reader.ReadU32());
    reloc.insn_off = insn_off;
    out.push_back(std::move(reloc));
  }
  return out;
}

}  // namespace

Result<std::vector<uint8_t>> WriteBpfObject(const BpfObject& object) {
  // eBPF objects are always little-endian 64-bit in this corpus (built on
  // the dev machine; CO-RE is what makes them portable).
  ElfWriter writer(ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64});
  for (const BpfProgram& program : object.programs) {
    // A program with no recorded stream still gets a well-formed body: a
    // single exit so the section decodes cleanly.
    std::vector<uint8_t> insns = program.insns.empty() ? EncodeInsns({ExitInsn()})
                                                       : EncodeInsns(program.insns);
    uint32_t section = writer.AddSection(HookSectionName(program.hook), SectionType::kProgbits,
                                         std::move(insns), 0, kShfAlloc | kShfExecinstr);
    ElfSymbol sym;
    sym.name = program.name;
    sym.bind = SymBind::kGlobal;
    sym.type = SymType::kFunc;
    sym.shndx = static_cast<uint16_t>(section);
    writer.AddSymbol(sym);
  }
  writer.AddSection(".rodata.name", SectionType::kProgbits,
                    std::vector<uint8_t>(object.name.begin(), object.name.end()));
  writer.AddSection(kBtfSection, SectionType::kProgbits, EncodeBtf(object.btf));
  writer.AddSection(kBtfExtSection, SectionType::kProgbits, EncodeBtfExt(object.relocs));
  return writer.Finish();
}

Result<BpfObject> ParseBpfObject(std::vector<uint8_t> bytes, DiagnosticLedger* ledger) {
  DEPSURF_ASSIGN_OR_RETURN(reader, ElfReader::Parse(std::move(bytes)));
  BpfObject object;
  // Program sections -> hooks; the section's FUNC symbol names the program.
  for (size_t i = 0; i < reader.sections().size(); ++i) {
    const ElfSectionView& section = reader.sections()[i];
    std::optional<Hook> hook = ParseHookSection(section.name);
    if (!hook.has_value()) {
      continue;
    }
    BpfProgram program;
    program.hook = *hook;
    for (const ElfSymbol& sym : reader.symbols()) {
      if (sym.shndx == i && sym.type == SymType::kFunc) {
        program.name = sym.name;
        break;
      }
    }
    // Decode the instruction stream. A garbage stream degrades this one
    // program (keeping its decoded prefix) rather than failing the object.
    Result<ByteReader> data = reader.SectionData(section);
    if (data.ok()) {
      program.insns = DecodeInsns(*data, ledger);
    } else if (ledger != nullptr) {
      ledger->AddError(DiagSeverity::kDegraded, DiagSubsystem::kBpf, data.error());
    }
    object.programs.push_back(std::move(program));
  }
  if (const ElfSectionView* name_sec = reader.SectionByName(".rodata.name")) {
    DEPSURF_ASSIGN_OR_RETURN(data, reader.SectionData(*name_sec));
    DEPSURF_ASSIGN_OR_RETURN(raw, data.ReadBytes(data.size()));
    object.name.assign(raw.begin(), raw.end());
  }
  DEPSURF_ASSIGN_OR_RETURN(btf_data, reader.SectionDataByName(kBtfSection));
  DEPSURF_ASSIGN_OR_RETURN(btf, DecodeBtf(btf_data));
  object.btf = std::move(btf);
  DEPSURF_ASSIGN_OR_RETURN(ext_data, reader.SectionDataByName(kBtfExtSection));
  DEPSURF_ASSIGN_OR_RETURN(relocs, DecodeBtfExt(ext_data));
  object.relocs = std::move(relocs);
  // Clamp dangling program bindings (written by a different tool or mangled
  // in transit) back to "unbound" so downstream indexing stays safe.
  for (CoreReloc& reloc : object.relocs) {
    if (reloc.prog_index != kRelocUnbound && reloc.prog_index >= object.programs.size()) {
      if (ledger != nullptr) {
        ledger->Add(DiagSeverity::kWarning, DiagSubsystem::kBpf, ErrorCode::kMalformedData,
                    StrFormat("reloc bound to missing program %u; treating as unbound",
                              reloc.prog_index));
      }
      reloc.prog_index = kRelocUnbound;
      reloc.insn_off = 0;
    }
  }
  return object;
}

}  // namespace depsurf
