// ELF serialization of BpfObject (WriteBpfObject / ParseBpfObject).
#include <map>

#include "src/bpf/bpf_object.h"
#include "src/btf/btf_codec.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_writer.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// .BTF.ext layout (simplified but binary): u32 magic, u32 reloc count,
// u32 string-section length, then per record {u32 type_id, u32 kind,
// u32 access offset}, then the string section.
std::vector<uint8_t> EncodeBtfExt(const std::vector<CoreReloc>& relocs) {
  ByteWriter strings(Endian::kLittle);
  strings.WriteU8(0);
  std::map<std::string, uint32_t> offsets;
  auto intern = [&](const std::string& s) {
    auto it = offsets.find(s);
    if (it != offsets.end()) {
      return it->second;
    }
    uint32_t off = static_cast<uint32_t>(strings.size());
    strings.WriteCString(s);
    offsets[s] = off;
    return off;
  };
  ByteWriter records(Endian::kLittle);
  for (const CoreReloc& reloc : relocs) {
    records.WriteU32(reloc.root_type_id);
    records.WriteU32(static_cast<uint32_t>(reloc.kind));
    records.WriteU32(intern(reloc.access_str));
  }
  ByteWriter out(Endian::kLittle);
  out.WriteU32(kBtfExtMagic);
  out.WriteU32(static_cast<uint32_t>(relocs.size()));
  out.WriteU32(static_cast<uint32_t>(strings.size()));
  const auto& rec_bytes = records.bytes();
  out.WriteBytes(rec_bytes.data(), rec_bytes.size());
  const auto& str_bytes = strings.bytes();
  out.WriteBytes(str_bytes.data(), str_bytes.size());
  return out.TakeBytes();
}

Result<std::vector<CoreReloc>> DecodeBtfExt(ByteReader reader) {
  DEPSURF_ASSIGN_OR_RETURN(magic, reader.ReadU32());
  if (magic != kBtfExtMagic) {
    return Error(ErrorCode::kMalformedData, "BTF.ext magic mismatch");
  }
  DEPSURF_ASSIGN_OR_RETURN(count, reader.ReadU32());
  DEPSURF_ASSIGN_OR_RETURN(str_len, reader.ReadU32());
  uint64_t records_size = static_cast<uint64_t>(count) * 12;
  if (records_size + str_len + 12 > reader.size()) {
    return Error(ErrorCode::kMalformedData, "BTF.ext truncated");
  }
  DEPSURF_ASSIGN_OR_RETURN(strings, reader.Slice(12 + records_size, str_len));
  std::vector<CoreReloc> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CoreReloc reloc;
    DEPSURF_ASSIGN_OR_RETURN(type_id, reader.ReadU32());
    reloc.root_type_id = type_id;
    DEPSURF_ASSIGN_OR_RETURN(kind, reader.ReadU32());
    if (kind != 0 && kind != 1 && kind != 3 && kind != 8) {
      return Error(ErrorCode::kUnsupported, StrFormat("reloc kind %u", kind));
    }
    reloc.kind = static_cast<CoreRelocKind>(kind);
    DEPSURF_ASSIGN_OR_RETURN(str_off, reader.ReadU32());
    DEPSURF_ASSIGN_OR_RETURN(access, strings.ReadCStringAt(str_off));
    reloc.access_str = std::move(access);
    out.push_back(std::move(reloc));
  }
  return out;
}

}  // namespace

Result<std::vector<uint8_t>> WriteBpfObject(const BpfObject& object) {
  // eBPF objects are always little-endian 64-bit in this corpus (built on
  // the dev machine; CO-RE is what makes them portable).
  ElfWriter writer(ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64});
  for (const BpfProgram& program : object.programs) {
    // Eight bytes of placeholder "bytecode" per program.
    std::vector<uint8_t> insns(8, 0x95);  // BPF_EXIT opcode value, repeated
    uint32_t section = writer.AddSection(HookSectionName(program.hook), SectionType::kProgbits,
                                         std::move(insns), 0, kShfAlloc | kShfExecinstr);
    ElfSymbol sym;
    sym.name = program.name;
    sym.bind = SymBind::kGlobal;
    sym.type = SymType::kFunc;
    sym.shndx = static_cast<uint16_t>(section);
    writer.AddSymbol(sym);
  }
  writer.AddSection(".rodata.name", SectionType::kProgbits,
                    std::vector<uint8_t>(object.name.begin(), object.name.end()));
  writer.AddSection(kBtfSection, SectionType::kProgbits, EncodeBtf(object.btf));
  writer.AddSection(kBtfExtSection, SectionType::kProgbits, EncodeBtfExt(object.relocs));
  return writer.Finish();
}

Result<BpfObject> ParseBpfObject(std::vector<uint8_t> bytes) {
  DEPSURF_ASSIGN_OR_RETURN(reader, ElfReader::Parse(std::move(bytes)));
  BpfObject object;
  // Program sections -> hooks; the section's FUNC symbol names the program.
  for (size_t i = 0; i < reader.sections().size(); ++i) {
    const ElfSectionView& section = reader.sections()[i];
    std::optional<Hook> hook = ParseHookSection(section.name);
    if (!hook.has_value()) {
      continue;
    }
    BpfProgram program;
    program.hook = *hook;
    for (const ElfSymbol& sym : reader.symbols()) {
      if (sym.shndx == i && sym.type == SymType::kFunc) {
        program.name = sym.name;
        break;
      }
    }
    object.programs.push_back(std::move(program));
  }
  if (const ElfSectionView* name_sec = reader.SectionByName(".rodata.name")) {
    DEPSURF_ASSIGN_OR_RETURN(data, reader.SectionData(*name_sec));
    DEPSURF_ASSIGN_OR_RETURN(raw, data.ReadBytes(data.size()));
    object.name.assign(raw.begin(), raw.end());
  }
  DEPSURF_ASSIGN_OR_RETURN(btf_data, reader.SectionDataByName(kBtfSection));
  DEPSURF_ASSIGN_OR_RETURN(btf, DecodeBtf(btf_data));
  object.btf = std::move(btf);
  DEPSURF_ASSIGN_OR_RETURN(ext_data, reader.SectionDataByName(kBtfExtSection));
  DEPSURF_ASSIGN_OR_RETURN(relocs, DecodeBtfExt(ext_data));
  object.relocs = std::move(relocs);
  return object;
}

}  // namespace depsurf
