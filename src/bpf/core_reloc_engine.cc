#include "src/bpf/core_reloc_engine.h"

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Byte size of a type in the kernel graph (pointers assume LP64; the value
// only feeds kFieldSize results).
uint32_t SizeOfKernelType(const TypeGraph& graph, BtfTypeId id) {
  const BtfType* t = graph.Get(graph.ResolveAliases(id));
  if (t == nullptr) {
    return 0;
  }
  switch (t->kind) {
    case BtfKind::kInt:
    case BtfKind::kFloat:
    case BtfKind::kStruct:
    case BtfKind::kUnion:
    case BtfKind::kEnum:
      return t->size;
    case BtfKind::kPtr:
      return 8;
    case BtfKind::kArray:
      return t->nelems * SizeOfKernelType(graph, t->ref_type_id);
    default:
      return 0;
  }
}

}  // namespace

Result<RelocResult> ResolveCoreReloc(const TypeGraph& local_btf, const CoreReloc& reloc,
                                     const TypeGraph& kernel_btf) {
  const BtfType* local_root = local_btf.Get(local_btf.ResolveAliases(reloc.root_type_id));
  if (local_root == nullptr || local_root->name.empty()) {
    return Error(ErrorCode::kMalformedData, "relocation root is not a named type");
  }
  bool is_guard = reloc.kind == CoreRelocKind::kFieldExists;

  // Step 1: match the root type in the kernel BTF by name.
  auto kernel_root = kernel_btf.FindByKindAndName(local_root->kind, local_root->name);
  if (!kernel_root.has_value()) {
    RelocResult result;
    if (reloc.kind == CoreRelocKind::kTypeExists || is_guard) {
      result.outcome = RelocOutcome::kGuardedAbsent;
      result.value = 0;
      result.detail = local_root->name + " (absent)";
      return result;
    }
    result.outcome = RelocOutcome::kTypeMissing;
    result.detail = "no type named " + local_root->name + " in kernel BTF";
    return result;
  }
  if (reloc.kind == CoreRelocKind::kTypeExists) {
    RelocResult result;
    result.value = 1;
    result.detail = local_root->name + " (present)";
    return result;
  }

  // Step 2: replay the access chain by *field name*. The local access
  // string gives member indices into the local type; each step is looked up
  // by name in the kernel type, accumulating the kernel byte offset.
  std::vector<std::string> indices = SplitString(reloc.access_str, ':');
  if (indices.size() < 2) {
    return Error(ErrorCode::kMalformedData, "field relocation without member steps");
  }
  BtfTypeId local_id = local_btf.ResolveAliases(reloc.root_type_id);
  BtfTypeId kernel_id = *kernel_root;
  uint64_t bit_offset = 0;
  std::string trail = local_root->name;
  const BtfMember* kernel_member = nullptr;

  for (size_t step = 1; step < indices.size(); ++step) {
    const BtfType* local_type = local_btf.Get(local_id);
    const BtfType* kernel_type = kernel_btf.Get(kernel_btf.ResolveAliases(kernel_id));
    if (local_type == nullptr ||
        (local_type->kind != BtfKind::kStruct && local_type->kind != BtfKind::kUnion)) {
      return Error(ErrorCode::kMalformedData, "local access chain leaves struct territory");
    }
    size_t index = 0;
    for (char c : indices[step]) {
      if (c < '0' || c > '9') {
        return Error(ErrorCode::kMalformedData, "bad access index " + indices[step]);
      }
      index = index * 10 + static_cast<size_t>(c - '0');
    }
    if (index >= local_type->members.size()) {
      return Error(ErrorCode::kMalformedData, "local member index out of range");
    }
    const BtfMember& local_member = local_type->members[index];

    // Kernel side: the same struct, matched field by name.
    if (kernel_type == nullptr ||
        (kernel_type->kind != BtfKind::kStruct && kernel_type->kind != BtfKind::kUnion)) {
      RelocResult result;
      result.outcome = is_guard ? RelocOutcome::kGuardedAbsent : RelocOutcome::kTypeMissing;
      result.detail = trail + " is opaque in kernel BTF";
      return result;
    }
    kernel_member = nullptr;
    for (const BtfMember& m : kernel_type->members) {
      if (m.name == local_member.name) {
        kernel_member = &m;
        break;
      }
    }
    trail += "::" + local_member.name;
    if (kernel_member == nullptr) {
      RelocResult result;
      if (is_guard) {
        result.outcome = RelocOutcome::kGuardedAbsent;
        result.value = 0;
        result.detail = trail + " (absent)";
      } else {
        result.outcome = RelocOutcome::kFieldMissing;
        result.detail = trail + " missing in kernel";
      }
      return result;
    }
    bit_offset += kernel_member->bits_offset;
    if (step + 1 == indices.size()) {
      break;  // final member: the accumulated offset is the answer
    }

    // Descend for chained accesses: through the member type, and through
    // one pointer hop (a->b->c).
    local_id = local_btf.ResolveAliases(local_member.type_id);
    const BtfType* local_next = local_btf.Get(local_id);
    if (local_next != nullptr && local_next->kind == BtfKind::kPtr) {
      local_id = local_btf.ResolveAliases(local_next->ref_type_id);
      bit_offset = 0;  // a pointer hop restarts the offset in the new object
    }
    kernel_id = kernel_btf.ResolveAliases(kernel_member->type_id);
    const BtfType* kernel_next = kernel_btf.Get(kernel_id);
    if (kernel_next != nullptr && kernel_next->kind == BtfKind::kPtr) {
      kernel_id = kernel_btf.ResolveAliases(kernel_next->ref_type_id);
    }
    // Named aggregates on the kernel side may be forward declarations in
    // this compilation unit; re-resolve by name to the full definition.
    const BtfType* resolved = kernel_btf.Get(kernel_id);
    if (resolved != nullptr && resolved->kind == BtfKind::kFwd) {
      if (auto full = kernel_btf.FindStruct(resolved->name); full.has_value()) {
        kernel_id = *full;
      }
    }
  }

  RelocResult result;
  switch (reloc.kind) {
    case CoreRelocKind::kFieldByteOffset:
      result.value = bit_offset / 8;
      result.detail = StrFormat("%s @ +%llu", trail.c_str(),
                                static_cast<unsigned long long>(result.value));
      break;
    case CoreRelocKind::kFieldExists:
      result.value = 1;
      result.detail = trail + " (present)";
      break;
    case CoreRelocKind::kFieldSize:
      result.value = SizeOfKernelType(kernel_btf, kernel_member->type_id);
      result.detail = StrFormat("sizeof(%s) = %llu", trail.c_str(),
                                static_cast<unsigned long long>(result.value));
      break;
    case CoreRelocKind::kTypeExists:
      result.value = 1;
      break;
  }
  return result;
}

LoadResult SimulateLoad(const BpfObject& object, const TypeGraph& kernel_btf) {
  obs::ScopedSpan span("reloc.simulate_load");
  span.AddAttr("program", object.name);
  span.AddAttr("relocs", static_cast<uint64_t>(object.relocs.size()));
  LoadResult load;
  load.loaded = true;
  load.relocs.reserve(object.relocs.size());
  for (const CoreReloc& reloc : object.relocs) {
    auto result = ResolveCoreReloc(object.btf, reloc, kernel_btf);
    if (!result.ok()) {
      load.loaded = false;
      load.failure = result.error().ToString();
      load.relocs.push_back(RelocResult{RelocOutcome::kTypeMissing, 0, load.failure});
      continue;
    }
    if (result->outcome == RelocOutcome::kFieldMissing ||
        result->outcome == RelocOutcome::kTypeMissing) {
      if (load.loaded) {
        load.failure = result->detail;
      }
      load.loaded = false;
    }
    load.relocs.push_back(result.TakeValue());
  }

  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("reloc.loads_simulated");
  uint64_t resolved = 0, field_missing = 0, type_missing = 0, guarded_absent = 0;
  for (const RelocResult& r : load.relocs) {
    switch (r.outcome) {
      case RelocOutcome::kResolved:
        ++resolved;
        break;
      case RelocOutcome::kFieldMissing:
        ++field_missing;
        break;
      case RelocOutcome::kTypeMissing:
        ++type_missing;
        break;
      case RelocOutcome::kGuardedAbsent:
        ++guarded_absent;
        break;
    }
  }
  metrics.Incr("reloc.resolved", resolved);
  metrics.Incr("reloc.field_missing", field_missing);
  metrics.Incr("reloc.type_missing", type_missing);
  metrics.Incr("reloc.guarded_absent", guarded_absent);
  span.AddAttr("resolved", resolved);
  span.AddAttr("missed", field_missing + type_missing);
  span.AddAttr("loaded", load.loaded ? "true" : "false");
  return load;
}

}  // namespace depsurf
