// Instruction-stream rewriter: applies remediation records to a BpfObject.
//
// A GuardInsertion asks for the builder's `field_exists` guard shape —
//   rX = field_exists(struct::field)   (LD_IMM64, patched to 0/1 by CO-RE)
//   if rX == 0 goto +slots(covered)    (skip the covered access when absent)
// — to be spliced in front of one instruction. Splicing shifts every later
// slot, so the rewriter re-patches all crossing jump displacements, shifts
// every CoreReloc byte offset bound to the program (the in-memory view of
// the .BTF.ext records), and appends a new kFieldExists relocation bound at
// the inserted LD_IMM64. The result is a valid object that round-trips
// through WriteBpfObject/ParseBpfObject.
#ifndef DEPSURF_SRC_BPF_BPF_REWRITER_H_
#define DEPSURF_SRC_BPF_BPF_REWRITER_H_

#include <cstdint>
#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/util/diagnostic_ledger.h"
#include "src/util/error.h"

namespace depsurf {

struct GuardInsertion {
  uint32_t prog_index = 0;  // program receiving the guard
  uint32_t insn_off = 0;    // byte offset of the instruction to protect
  uint8_t scratch_reg = 0;  // dead register the guard may clobber (r0..r9)
  // Relocation whose (root type, access string) names the guarded field;
  // the appended kFieldExists record copies its target.
  uint32_t reloc_index = 0;
};

// Applies every insertion to `object` in place. All-or-nothing: on error
// (offset not on an instruction boundary, jump displacement overflow,
// relocation pointing mid-instruction, duplicate insertion point, ...)
// the object is left untouched, a kBpf entry is recorded in `ledger` when
// one is given, and the returned Status carries the same message.
Status InsertFieldExistsGuards(BpfObject& object,
                               std::vector<GuardInsertion> insertions,
                               DiagnosticLedger* ledger = nullptr);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BPF_BPF_REWRITER_H_
