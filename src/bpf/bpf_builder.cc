#include "src/bpf/bpf_builder.h"

#include "src/util/str_util.h"

namespace depsurf {

BpfObjectBuilder::BpfObjectBuilder(std::string name) : lowering_(object_.btf) {
  object_.name = std::move(name);
}

BpfObjectBuilder& BpfObjectBuilder::AttachKprobe(const std::string& func) {
  object_.programs.push_back(BpfProgram{StrFormat("kprobe_%s", func.c_str()),
                                        Hook{HookKind::kKprobe, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachKretprobe(const std::string& func) {
  object_.programs.push_back(BpfProgram{StrFormat("kretprobe_%s", func.c_str()),
                                        Hook{HookKind::kKretprobe, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachFentry(const std::string& func) {
  object_.programs.push_back(
      BpfProgram{StrFormat("fentry_%s", func.c_str()), Hook{HookKind::kFentry, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachFexit(const std::string& func) {
  object_.programs.push_back(
      BpfProgram{StrFormat("fexit_%s", func.c_str()), Hook{HookKind::kFexit, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachTracepoint(const std::string& category,
                                                     const std::string& event) {
  object_.programs.push_back(BpfProgram{StrFormat("tp_%s", event.c_str()),
                                        Hook{HookKind::kTracepoint, event, category}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachRawTracepoint(const std::string& event) {
  object_.programs.push_back(BpfProgram{StrFormat("raw_tp_%s", event.c_str()),
                                        Hook{HookKind::kRawTracepoint, event, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachSyscall(const std::string& name, bool exit) {
  object_.programs.push_back(
      BpfProgram{StrFormat("%s_%s", exit ? "exit" : "enter", name.c_str()),
                 Hook{exit ? HookKind::kSyscallExit : HookKind::kSyscallEnter, name, "syscalls"}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachLsm(const std::string& hook) {
  object_.programs.push_back(
      BpfProgram{StrFormat("lsm_%s", hook.c_str()), Hook{HookKind::kLsm, hook, ""}});
  return *this;
}

void BpfObjectBuilder::Emit(BpfInsn insn) {
  if (object_.programs.empty()) {
    return;
  }
  object_.programs.back().insns.push_back(insn);
}

uint32_t BpfObjectBuilder::NextInsnOffset() const {
  if (object_.programs.empty()) {
    return 0;
  }
  return static_cast<uint32_t>(EncodedSize(object_.programs.back().insns));
}

void BpfObjectBuilder::BindReloc(CoreReloc& reloc) const {
  if (object_.programs.empty()) {
    return;
  }
  reloc.prog_index = static_cast<uint32_t>(object_.programs.size() - 1);
  reloc.insn_off = NextInsnOffset();
}

BpfObjectBuilder& BpfObjectBuilder::CallHelper(uint32_t helper_id) {
  Emit(CallHelperInsn(static_cast<int32_t>(helper_id)));
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::RawOffsetDeref(int16_t offset) {
  // Deliberately no relocation: the displacement is frozen at compile time,
  // exactly the non-CO-RE pattern the analyzer reports.
  Emit(LoadField(/*dst=*/4, /*src=*/1, offset));
  return *this;
}

Status BpfObjectBuilder::BeginGuard(const std::string& struct_name,
                                    const std::string& field_name, const TypeStr& field_type) {
  DEPSURF_RETURN_IF_ERROR(CheckFieldExists(struct_name, field_name, field_type));
  if (object_.programs.empty()) {
    return Status(ErrorCode::kInvalidArgument, "guard requires an attached program");
  }
  // The exists check materialized r3 (1 when present, 0 after patching on a
  // kernel without the field); branch over the guarded body when absent.
  // The jump delta is patched by EndGuard once the body length is known.
  Emit(JumpEqImm(/*dst=*/3, 0, /*delta=*/0));
  guard_stack_.push_back(OpenGuard{object_.programs.size() - 1,
                                   object_.programs.back().insns.size() - 1});
  return Status::Ok();
}

Status BpfObjectBuilder::EndGuard() {
  if (guard_stack_.empty()) {
    return Status(ErrorCode::kInvalidArgument, "EndGuard without BeginGuard");
  }
  OpenGuard guard = guard_stack_.back();
  guard_stack_.pop_back();
  if (guard.prog_index != object_.programs.size() - 1) {
    return Status(ErrorCode::kInvalidArgument, "guard crosses program boundary");
  }
  std::vector<BpfInsn>& insns = object_.programs.back().insns;
  // BPF jump semantics: pc += delta relative to the *next* slot.
  size_t branch_slot = 0;
  for (size_t i = 0; i < guard.branch_insn; ++i) {
    branch_slot += insns[i].Slots();
  }
  size_t end_slot = branch_slot;
  for (size_t i = guard.branch_insn; i < insns.size(); ++i) {
    end_slot += insns[i].Slots();
  }
  insns[guard.branch_insn].offset = static_cast<int16_t>(end_slot - branch_slot - 1);
  return Status::Ok();
}

Result<size_t> BpfObjectBuilder::EnsureField(const std::string& struct_name,
                                             const std::string& field_name,
                                             const TypeStr& field_type) {
  auto& fields = struct_fields_[struct_name];
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) {
      return i;
    }
  }
  fields.push_back(FieldSpec{field_name, field_type});
  // Re-lower the struct so the program BTF carries the new field.
  StructSpec spec;
  spec.name = struct_name;
  spec.fields = fields;
  DEPSURF_ASSIGN_OR_RETURN(ignored, lowering_.DefineStruct(spec));
  (void)ignored;
  return fields.size() - 1;
}

Status BpfObjectBuilder::Access(const std::string& struct_name, const std::string& field_name,
                                const TypeStr& field_type, CoreRelocKind kind) {
  DEPSURF_ASSIGN_OR_RETURN(index, EnsureField(struct_name, field_name, field_type));
  auto root = object_.btf.FindStruct(struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "struct vanished: " + struct_name);
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = StrFormat("0:%zu", index);
  reloc.kind = kind;
  BindReloc(reloc);
  // Field reads compile to a ctx-relative load whose displacement the
  // loader patches via the relocation; presence checks materialize a
  // scalar the loader rewrites to 0/1.
  if (kind == CoreRelocKind::kFieldByteOffset) {
    Emit(LoadField(/*dst=*/2, /*src=*/1, 0));
  } else {
    Emit(LoadImm64(/*dst=*/3, 1));
  }
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

Status BpfObjectBuilder::AccessField(const std::string& struct_name,
                                     const std::string& field_name, const TypeStr& field_type) {
  return Access(struct_name, field_name, field_type, CoreRelocKind::kFieldByteOffset);
}

Status BpfObjectBuilder::CheckFieldExists(const std::string& struct_name,
                                          const std::string& field_name,
                                          const TypeStr& field_type) {
  return Access(struct_name, field_name, field_type, CoreRelocKind::kFieldExists);
}

Status BpfObjectBuilder::TouchStruct(const std::string& struct_name) {
  if (struct_fields_.find(struct_name) == struct_fields_.end()) {
    struct_fields_[struct_name] = {};
    StructSpec spec;
    spec.name = struct_name;
    DEPSURF_ASSIGN_OR_RETURN(ignored, lowering_.DefineStruct(spec));
    (void)ignored;
  }
  auto root = object_.btf.FindStruct(struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "struct vanished: " + struct_name);
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = "0";
  reloc.kind = CoreRelocKind::kTypeExists;
  BindReloc(reloc);
  Emit(LoadImm64(/*dst=*/3, 1));
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

Status BpfObjectBuilder::AccessChain(const std::vector<ChainLink>& chain) {
  if (chain.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty access chain");
  }
  std::string access = "0";
  for (const ChainLink& link : chain) {
    DEPSURF_ASSIGN_OR_RETURN(index, EnsureField(link.struct_name, link.field_name,
                                                link.field_type));
    access += StrFormat(":%zu", index);
  }
  auto root = object_.btf.FindStruct(chain.front().struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "root struct missing");
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = access;
  reloc.kind = CoreRelocKind::kFieldByteOffset;
  BindReloc(reloc);
  Emit(LoadField(/*dst=*/2, /*src=*/1, 0));
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

BpfObject BpfObjectBuilder::Build() {
  // Close every program with an explicit exit so the streams are
  // verifier-shaped even for hook-only programs.
  for (BpfProgram& program : object_.programs) {
    if (program.insns.empty() || !program.insns.back().IsExit()) {
      program.insns.push_back(ExitInsn());
    }
  }
  return std::move(object_);
}

}  // namespace depsurf
