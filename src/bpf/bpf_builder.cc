#include "src/bpf/bpf_builder.h"

#include "src/util/str_util.h"

namespace depsurf {

BpfObjectBuilder::BpfObjectBuilder(std::string name) : lowering_(object_.btf) {
  object_.name = std::move(name);
}

BpfObjectBuilder& BpfObjectBuilder::AttachKprobe(const std::string& func) {
  object_.programs.push_back(BpfProgram{StrFormat("kprobe_%s", func.c_str()),
                                        Hook{HookKind::kKprobe, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachKretprobe(const std::string& func) {
  object_.programs.push_back(BpfProgram{StrFormat("kretprobe_%s", func.c_str()),
                                        Hook{HookKind::kKretprobe, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachFentry(const std::string& func) {
  object_.programs.push_back(
      BpfProgram{StrFormat("fentry_%s", func.c_str()), Hook{HookKind::kFentry, func, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachTracepoint(const std::string& category,
                                                     const std::string& event) {
  object_.programs.push_back(BpfProgram{StrFormat("tp_%s", event.c_str()),
                                        Hook{HookKind::kTracepoint, event, category}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachRawTracepoint(const std::string& event) {
  object_.programs.push_back(BpfProgram{StrFormat("raw_tp_%s", event.c_str()),
                                        Hook{HookKind::kRawTracepoint, event, ""}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachSyscall(const std::string& name, bool exit) {
  object_.programs.push_back(
      BpfProgram{StrFormat("%s_%s", exit ? "exit" : "enter", name.c_str()),
                 Hook{exit ? HookKind::kSyscallExit : HookKind::kSyscallEnter, name, "syscalls"}});
  return *this;
}

BpfObjectBuilder& BpfObjectBuilder::AttachLsm(const std::string& hook) {
  object_.programs.push_back(
      BpfProgram{StrFormat("lsm_%s", hook.c_str()), Hook{HookKind::kLsm, hook, ""}});
  return *this;
}

Result<size_t> BpfObjectBuilder::EnsureField(const std::string& struct_name,
                                             const std::string& field_name,
                                             const TypeStr& field_type) {
  auto& fields = struct_fields_[struct_name];
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) {
      return i;
    }
  }
  fields.push_back(FieldSpec{field_name, field_type});
  // Re-lower the struct so the program BTF carries the new field.
  StructSpec spec;
  spec.name = struct_name;
  spec.fields = fields;
  DEPSURF_ASSIGN_OR_RETURN(ignored, lowering_.DefineStruct(spec));
  (void)ignored;
  return fields.size() - 1;
}

Status BpfObjectBuilder::Access(const std::string& struct_name, const std::string& field_name,
                                const TypeStr& field_type, CoreRelocKind kind) {
  DEPSURF_ASSIGN_OR_RETURN(index, EnsureField(struct_name, field_name, field_type));
  auto root = object_.btf.FindStruct(struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "struct vanished: " + struct_name);
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = StrFormat("0:%zu", index);
  reloc.kind = kind;
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

Status BpfObjectBuilder::AccessField(const std::string& struct_name,
                                     const std::string& field_name, const TypeStr& field_type) {
  return Access(struct_name, field_name, field_type, CoreRelocKind::kFieldByteOffset);
}

Status BpfObjectBuilder::CheckFieldExists(const std::string& struct_name,
                                          const std::string& field_name,
                                          const TypeStr& field_type) {
  return Access(struct_name, field_name, field_type, CoreRelocKind::kFieldExists);
}

Status BpfObjectBuilder::TouchStruct(const std::string& struct_name) {
  if (struct_fields_.find(struct_name) == struct_fields_.end()) {
    struct_fields_[struct_name] = {};
    StructSpec spec;
    spec.name = struct_name;
    DEPSURF_ASSIGN_OR_RETURN(ignored, lowering_.DefineStruct(spec));
    (void)ignored;
  }
  auto root = object_.btf.FindStruct(struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "struct vanished: " + struct_name);
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = "0";
  reloc.kind = CoreRelocKind::kTypeExists;
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

Status BpfObjectBuilder::AccessChain(const std::vector<ChainLink>& chain) {
  if (chain.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty access chain");
  }
  std::string access = "0";
  for (const ChainLink& link : chain) {
    DEPSURF_ASSIGN_OR_RETURN(index, EnsureField(link.struct_name, link.field_name,
                                                link.field_type));
    access += StrFormat(":%zu", index);
  }
  auto root = object_.btf.FindStruct(chain.front().struct_name);
  if (!root.has_value()) {
    return Status(ErrorCode::kInternal, "root struct missing");
  }
  CoreReloc reloc;
  reloc.root_type_id = *root;
  reloc.access_str = access;
  reloc.kind = CoreRelocKind::kFieldByteOffset;
  object_.relocs.push_back(std::move(reloc));
  return Status::Ok();
}

BpfObject BpfObjectBuilder::Build() { return std::move(object_); }

}  // namespace depsurf
