#include "src/bpf/bpf_rewriter.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "src/bpf/bpf_insn.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Slots a guard occupies: LD_IMM64 (2) + conditional jump (1).
constexpr size_t kGuardSlots = 3;
constexpr uint32_t kGuardBytes = kGuardSlots * 8;

}  // namespace

Status InsertFieldExistsGuards(BpfObject& object,
                               std::vector<GuardInsertion> insertions,
                               DiagnosticLedger* ledger) {
  auto fail = [&](std::string msg) -> Status {
    if (ledger != nullptr) {
      ledger->Add(DiagSeverity::kDegraded, DiagSubsystem::kBpf,
                  ErrorCode::kInvalidArgument, msg);
    }
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  };

  if (insertions.empty()) {
    return Status::Ok();
  }
  for (const GuardInsertion& ins : insertions) {
    if (ins.prog_index >= object.programs.size()) {
      return fail(StrFormat("guard insertion names program %u of %zu",
                            ins.prog_index, object.programs.size()));
    }
    if (ins.reloc_index >= object.relocs.size()) {
      return fail(StrFormat("guard insertion names relocation %u of %zu",
                            ins.reloc_index, object.relocs.size()));
    }
    if (ins.scratch_reg > 9) {
      return fail(StrFormat("guard insertion scratch register r%u is not a "
                            "general-purpose register",
                            ins.scratch_reg));
    }
  }
  std::sort(insertions.begin(), insertions.end(),
            [](const GuardInsertion& a, const GuardInsertion& b) {
              return std::pair(a.prog_index, a.insn_off) <
                     std::pair(b.prog_index, b.insn_off);
            });
  for (size_t i = 1; i < insertions.size(); ++i) {
    if (insertions[i].prog_index == insertions[i - 1].prog_index &&
        insertions[i].insn_off == insertions[i - 1].insn_off) {
      return fail(StrFormat("duplicate guard insertion at program %u insn_off %u",
                            insertions[i].prog_index, insertions[i].insn_off));
    }
  }

  // All-or-nothing: rewrite copies, commit only if every step succeeds.
  std::vector<std::vector<BpfInsn>> new_streams(object.programs.size());
  std::vector<CoreReloc> new_relocs = object.relocs;
  std::vector<CoreReloc> appended;
  appended.reserve(insertions.size());

  size_t cursor = 0;
  for (uint32_t p = 0; p < object.programs.size(); ++p) {
    size_t begin = cursor;
    while (cursor < insertions.size() && insertions[cursor].prog_index == p) {
      ++cursor;
    }
    if (cursor == begin) {
      continue;  // program untouched
    }
    const std::vector<BpfInsn>& insns = object.programs[p].insns;
    const std::string& pname = object.programs[p].name;

    // Slot layout of the original stream.
    std::vector<size_t> old_slot(insns.size(), 0);
    std::map<size_t, size_t> slot_to_insn;  // boundary slot -> insn index
    size_t total_slots = 0;
    for (size_t i = 0; i < insns.size(); ++i) {
      old_slot[i] = total_slots;
      slot_to_insn[total_slots] = i;
      total_slots += insns[i].Slots();
    }

    // Resolve each insertion's byte offset to an instruction boundary.
    std::vector<bool> has(insns.size(), false);
    std::vector<uint8_t> scratch(insns.size(), 0);
    for (size_t k = begin; k < cursor; ++k) {
      const GuardInsertion& ins = insertions[k];
      auto it = ins.insn_off % 8 == 0 ? slot_to_insn.find(ins.insn_off / 8)
                                      : slot_to_insn.end();
      if (it == slot_to_insn.end()) {
        return fail(StrFormat("%s: guard insertion at byte %u is not on an "
                              "instruction boundary",
                              pname.c_str(), ins.insn_off));
      }
      has[it->second] = true;
      scratch[it->second] = ins.scratch_reg;
    }
    const size_t inserted_here = cursor - begin;

    // New slot of every original instruction, and of the guard (when any)
    // that now precedes it.
    std::vector<size_t> new_slot(insns.size(), 0);
    size_t shift = 0;
    for (size_t i = 0; i < insns.size(); ++i) {
      if (has[i]) {
        shift += kGuardSlots;
      }
      new_slot[i] = old_slot[i] + shift;
    }
    const size_t new_total_slots = total_slots + inserted_here * kGuardSlots;

    // Jump targets route through an inserted guard: an edge that reached the
    // covered instruction must still be forced through its exists-check, or
    // the guard would no longer dominate the access.
    auto new_target_slot = [&](size_t old_target) -> size_t {
      if (old_target == total_slots) {
        return new_total_slots;
      }
      size_t t = slot_to_insn.at(old_target);
      return has[t] ? new_slot[t] - kGuardSlots : new_slot[t];
    };

    // Emit the rewritten stream, re-patching every jump displacement.
    std::vector<BpfInsn> out;
    out.reserve(insns.size() + inserted_here * 2);
    for (size_t i = 0; i < insns.size(); ++i) {
      if (has[i]) {
        out.push_back(LoadImm64(scratch[i], 1));
        out.push_back(JumpEqImm(scratch[i], 0,
                                static_cast<int16_t>(insns[i].Slots())));
      }
      BpfInsn insn = insns[i];
      if (insn.IsJump()) {
        int64_t old_target =
            static_cast<int64_t>(old_slot[i]) + 1 + insn.offset;
        if (old_target < 0 || old_target > static_cast<int64_t>(total_slots) ||
            (old_target < static_cast<int64_t>(total_slots) &&
             slot_to_insn.find(static_cast<size_t>(old_target)) ==
                 slot_to_insn.end())) {
          return fail(StrFormat("%s: jump at slot %zu targets slot %lld, "
                                "which is not an instruction boundary",
                                pname.c_str(), old_slot[i],
                                static_cast<long long>(old_target)));
        }
        int64_t new_delta =
            static_cast<int64_t>(new_target_slot(static_cast<size_t>(old_target))) -
            (static_cast<int64_t>(new_slot[i]) + 1);
        if (new_delta < INT16_MIN || new_delta > INT16_MAX) {
          return fail(StrFormat("%s: re-patched jump at slot %zu needs delta "
                                "%lld, beyond the 16-bit displacement range",
                                pname.c_str(), new_slot[i],
                                static_cast<long long>(new_delta)));
        }
        insn.offset = static_cast<int16_t>(new_delta);
      }
      out.push_back(insn);
    }

    // Shift the .BTF.ext view: every relocation bound to this program moves
    // with the instruction it patches.
    for (CoreReloc& reloc : new_relocs) {
      if (reloc.prog_index != p) {
        continue;
      }
      if (reloc.insn_off % 8 == 0 &&
          slot_to_insn.count(reloc.insn_off / 8) != 0) {
        reloc.insn_off =
            static_cast<uint32_t>(new_slot[slot_to_insn.at(reloc.insn_off / 8)] * 8);
      } else if (reloc.insn_off >= total_slots * 8) {
        // Bound past the stream (salvaged prefix): keep it past the stream.
        reloc.insn_off += static_cast<uint32_t>(inserted_here) * kGuardBytes;
      } else {
        return fail(StrFormat("%s: relocation bound mid-instruction at byte %u "
                              "cannot be shifted",
                              pname.c_str(), reloc.insn_off));
      }
    }

    // One field_exists record per guard, bound at its LD_IMM64 and naming
    // the same access chain as the relocation it protects.
    for (size_t k = begin; k < cursor; ++k) {
      const GuardInsertion& ins = insertions[k];
      size_t i = slot_to_insn.at(ins.insn_off / 8);
      const CoreReloc& covered = object.relocs[ins.reloc_index];
      CoreReloc guard;
      guard.root_type_id = covered.root_type_id;
      guard.access_str = covered.access_str;
      guard.kind = CoreRelocKind::kFieldExists;
      guard.prog_index = p;
      guard.insn_off = static_cast<uint32_t>((new_slot[i] - kGuardSlots) * 8);
      appended.push_back(guard);
    }

    new_streams[p] = std::move(out);
  }

  // Commit.
  for (uint32_t p = 0; p < object.programs.size(); ++p) {
    if (!new_streams[p].empty()) {
      object.programs[p].insns = std::move(new_streams[p]);
    }
  }
  new_relocs.insert(new_relocs.end(), appended.begin(), appended.end());
  object.relocs = std::move(new_relocs);
  return Status::Ok();
}

}  // namespace depsurf
