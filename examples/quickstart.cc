// Quickstart: the paper's Listing 1 program (a kprobe on do_unlinkat that
// prints unlinked file names) checked against two LTS kernels.
//
//   $ quickstart [--scale=0.05] [--seed=N]
//
// Walks the full DepSurf flow: generate/parse kernel images, extract
// dependency surfaces, build the program object, extract its dependency
// set, and report mismatches.
#include <cstdio>

#include "src/bpf/bpf_builder.h"
#include "src/study/study.h"

using namespace depsurf;

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv, /*default_scale=*/0.05));

  // Listing 1: SEC("kprobe/do_unlinkat") reading filename::name through
  // pt_regs::si (the second x86 argument register).
  BpfObjectBuilder builder("trace_unlink");
  builder.AttachKprobe("do_unlinkat");
  if (!builder.AccessField("pt_regs", "si", "unsigned long").ok() ||
      !builder.AccessField("filename", "name", "const char *").ok()) {
    fprintf(stderr, "failed to build program object\n");
    return 1;
  }
  BpfObject object = builder.Build();
  printf("program: %s\n", object.name.c_str());
  for (const BpfProgram& prog : object.programs) {
    printf("  section %s\n", HookSectionName(prog.hook).c_str());
  }

  // Check it against every LTS image.
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }
  printf("\nbuilding %zu kernel images (scale %.2f)...\n", corpus.size(),
         study.options().scale);
  auto dataset = study.BuildDataset(corpus, [](const Study::ImageProgress& image) {
    printf("  [%zu/%zu] %s (%.2fs)\n", image.index + 1, image.total, image.label.c_str(),
           image.seconds);
  });
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  auto report = Study::Analyze(*dataset, object);
  if (!report.ok()) {
    fprintf(stderr, "analyze: %s\n", report.error().ToString().c_str());
    return 1;
  }
  printf("\n%s\n", report->RenderMatrix().c_str());

  // Explain each mismatch the way a developer would read it.
  printf("diagnosis:\n");
  for (const ReportRow& row : report->rows) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      for (MismatchKind kind : row.cells[i]) {
        Consequence consequence = ConsequenceOf(row.kind, kind);
        printf("  %-10s %-28s on %-22s %-12s -> %s (%s)\n", DepKindName(row.kind),
               row.name.c_str(), report->image_labels[i].c_str(), MismatchKindName(kind),
               ConsequenceName(consequence),
               ImplicationName(ImplicationOf(consequence)));
      }
    }
  }
  if (!report->AnyMismatch()) {
    printf("  no mismatches: the program is compatible with all checked kernels\n");
  } else {
    printf("\nNote: before Linux v4.15, do_unlinkat took (int dfd, const char *pathname);\n"
           "a program assuming the new signature silently reads the wrong data there\n"
           "(struct filename did not even exist yet).\n");
  }
  return 0;
}
