// The biotop case study (paper §2.5 and §3.3): a two-year dependency
// failure diagnosed in seconds.
//
//   $ diagnose_biotop [--scale=0.05]
//
// Reproduces the Figure 4 (left) mismatch matrix for biotop across the 21
// analysis images and walks the timeline of the be6bfe3 breakage.
#include <cstdio>

#include "src/study/study.h"

using namespace depsurf;

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv, /*default_scale=*/0.05));

  printf("building the 21-image dependency-analysis corpus (scale %.2f)...\n",
         study.options().scale);
  auto dataset = study.BuildDataset(DependencyAnalysisCorpus());
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  auto report = study.Analyze(*dataset, "biotop");
  if (!report.ok()) {
    fprintf(stderr, "analyze: %s\n", report.error().ToString().c_str());
    return 1;
  }
  printf("\n%s\n", report->RenderMatrix().c_str());
  printf("automated diagnosis (decl renderings from the dataset):\n%s\n",
         ExplainReport(*dataset, *report).c_str());

  printf(
      "How to read this (the two-year biotop saga):\n"
      "  * blk_mq_start_request is mismatch-free on every image: the safe anchor.\n"
      "  * blk_account_io_{start,done}: 'C' from v5.8 -- commit b5af37a removed a\n"
      "    parameter, so a program reading the second argument gets stray data.\n"
      "    'S' marks the selective-inline window, and 'F' from v5.19 -- commit\n"
      "    be6bfe3 made them static inline, so attachment fails outright.\n"
      "  * __blk_account_io_start explains why the first fix attempt failed: the\n"
      "    compiler happened to fully inline it ('F') even though it is not\n"
      "    marked inline.\n"
      "  * block_io_{start,done} tracepoints only exist from v6.5 ('-' before):\n"
      "    the eventual fix cannot help v5.17..v6.4 users.\n"
      "  * request::rq_disk moved to request_queue::disk in v5.15; both exist in\n"
      "    that one version, so a CO-RE field-exists check can bridge the gap.\n\n");

  printf("worst implication for biotop: %s\n",
         ImplicationName(report->WorstImplication()));

  // Per-category counts (the biotop row of Table 7).
  printf("\nTable 7 row (functions): total=%d absent=%d changed=%d full=%d selective=%d\n",
         report->funcs.total, report->funcs.absent, report->funcs.changed,
         report->funcs.full_inline, report->funcs.selective);
  printf("Table 7 row (fields):    total=%d absent=%d changed=%d\n", report->fields.total,
         report->fields.absent, report->fields.changed);
  printf("Table 7 row (tracepts):  total=%d absent=%d\n", report->tracepoints.total,
         report->tracepoints.absent);
  return 0;
}
