// The readahead fix workflow (paper §3.3): use the mismatch report to pick
// attachment fallbacks, then verify the fixed program.
//
//   $ fix_readahead [--scale=0.05]
#include <cstdio>

#include "src/bpf/bpf_builder.h"
#include "src/study/study.h"

using namespace depsurf;

namespace {

void PrintFallbackAdvice(const Dataset& dataset, const std::string& func) {
  auto cells = dataset.CheckFunc(func);
  auto labels = dataset.labels();
  std::string ok_on;
  for (size_t i = 0; i < cells.size(); ++i) {
    bool attachable = cells[i].count(MismatchKind::kAbsent) == 0 &&
                      cells[i].count(MismatchKind::kFullInline) == 0 &&
                      cells[i].count(MismatchKind::kTransformed) == 0;
    if (attachable) {
      if (!ok_on.empty()) {
        ok_on += ", ";
      }
      ok_on += labels[i];
    }
  }
  printf("  %-28s attachable on: %s\n", func.c_str(),
         ok_on.empty() ? "(nowhere)" : ok_on.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv, /*default_scale=*/0.05));
  printf("building the x86 version series (scale %.2f)...\n", study.options().scale);
  auto dataset = study.BuildDataset(X86GenericSeries());
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  // Step 1: the original readahead and its report.
  auto report = study.Analyze(*dataset, "readahead");
  if (!report.ok()) {
    fprintf(stderr, "analyze: %s\n", report.error().ToString().c_str());
    return 1;
  }
  printf("\n%s\n", report->RenderMatrix().c_str());
  printf(
      "Diagnosis (matching the paper's walkthrough):\n"
      "  * __do_page_cache_readahead: return type changed in v4.18 (c534aa3),\n"
      "    selectively inlined after the v5.8 refactor (2c68423), renamed to\n"
      "    do_page_cache_ra in v5.11 (8238287) -- absent afterwards.\n"
      "  * do_page_cache_ra: made static in v5.18 (56a4d67) -> fully inlined.\n"
      "  * __page_cache_alloc: became a wrapper of filemap_alloc_folio in v5.16\n"
      "    (bb3c579) -> fully inlined; transformed (.constprop) on gcc>=8 images.\n\n");

  // Step 2: per-version attachability advice for every candidate hook.
  printf("attachment fallback chain (newest first):\n");
  for (const char* func : {"page_cache_ra_order", "do_page_cache_ra",
                           "__do_page_cache_readahead", "filemap_alloc_folio",
                           "__page_cache_alloc"}) {
    PrintFallbackAdvice(*dataset, func);
  }

  // Step 3: the fixed program attaches to the whole chain and falls back at
  // load time; field accesses are guarded with bpf_core_field_exists.
  BpfObjectBuilder fixed("readahead_fixed");
  fixed.AttachKprobe("page_cache_ra_order")
      .AttachKprobe("do_page_cache_ra")
      .AttachKprobe("__do_page_cache_readahead")
      .AttachKprobe("filemap_alloc_folio")
      .AttachKprobe("__page_cache_alloc");
  if (!fixed.CheckFieldExists("folio", "flags", "unsigned long").ok() ||
      !fixed.TouchStruct("file_ra_state").ok()) {
    fprintf(stderr, "builder failed\n");
    return 1;
  }
  auto fixed_report = Study::Analyze(*dataset, fixed.Build());
  if (!fixed_report.ok()) {
    fprintf(stderr, "analyze fixed: %s\n", fixed_report.error().ToString().c_str());
    return 1;
  }
  printf("\nafter the fix (every kernel has at least one attachable hook, and the\n"
         "guarded field access no longer faults on pre-folio kernels):\n\n%s\n",
         fixed_report->RenderMatrix().c_str());

  // Per-image: does at least one hook attach?
  printf("per-image attachability of the fixed fallback chain:\n");
  auto labels = fixed_report->image_labels;
  for (size_t i = 0; i < labels.size(); ++i) {
    int attachable = 0;
    for (const ReportRow& row : fixed_report->rows) {
      if (row.kind != DepKind::kFunc) {
        continue;
      }
      const auto& cell = row.cells[i];
      if (cell.count(MismatchKind::kAbsent) == 0 && cell.count(MismatchKind::kFullInline) == 0 &&
          cell.count(MismatchKind::kTransformed) == 0) {
        ++attachable;
      }
    }
    printf("  %-24s %d/5 hooks attachable %s\n", labels[i].c_str(), attachable,
           attachable > 0 ? "" : " <-- STILL BROKEN");
  }
  return 0;
}
