// Survey: run all 53 real-world programs (Table 7 corpus) against the
// 21-image corpus and print the per-program mismatch summary plus a
// dataset-format function-status record (paper Appendix A.2.4).
//
//   $ survey_corpus [--scale=0.05]
#include <cstdio>

#include "src/study/study.h"
#include "src/util/table.h"

using namespace depsurf;

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv, /*default_scale=*/0.05));
  printf("building the 21-image corpus (scale %.2f)...\n", study.options().scale);
  auto dataset = study.BuildDataset(DependencyAnalysisCorpus());
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  TextTable table({"program", "funcs", "structs", "fields", "tracepts", "syscalls",
                   "mismatched", "worst implication"});
  int affected = 0;
  for (const BpfObject& object : study.programs().objects) {
    auto report = Study::Analyze(*dataset, object);
    if (!report.ok()) {
      fprintf(stderr, "%s: %s\n", object.name.c_str(), report.error().ToString().c_str());
      return 1;
    }
    bool any = report->AnyMismatch();
    affected += any ? 1 : 0;
    table.AddRow({object.name, std::to_string(report->funcs.total),
                  std::to_string(report->structs.total), std::to_string(report->fields.total),
                  std::to_string(report->tracepoints.total),
                  std::to_string(report->syscalls.total), any ? "yes" : "no",
                  ImplicationName(report->WorstImplication())});
  }
  printf("\n%s\n", table.Render().c_str());
  printf("affected programs: %d / %zu (%.0f%%; the paper reports 83%%)\n", affected,
         study.programs().objects.size(),
         100.0 * affected / study.programs().objects.size());

  // Appendix-style artifacts: the vfs_fsync function-status record and its
  // BTF declaration, straight from an extracted surface.
  auto surface = study.ExtractSurface(MakeBuild(KernelVersion(5, 4)));
  if (surface.ok()) {
    const FunctionEntry* fsync = surface->FindFunction("vfs_fsync");
    if (fsync != nullptr) {
      printf("\ndataset record for vfs_fsync on v5.4 (Appendix A.2.4 format):\n%s\n",
             fsync->StatusJson().c_str());
    }
  }
  return 0;
}
