
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpf/bpf_builder.cc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_builder.cc.o" "gcc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_builder.cc.o.d"
  "/root/repo/src/bpf/bpf_codec.cc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_codec.cc.o" "gcc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_codec.cc.o.d"
  "/root/repo/src/bpf/bpf_object.cc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_object.cc.o" "gcc" "src/bpf/CMakeFiles/depsurf_bpf.dir/bpf_object.cc.o.d"
  "/root/repo/src/bpf/core_reloc_engine.cc" "src/bpf/CMakeFiles/depsurf_bpf.dir/core_reloc_engine.cc.o" "gcc" "src/bpf/CMakeFiles/depsurf_bpf.dir/core_reloc_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kmodel/CMakeFiles/depsurf_kmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/btf/CMakeFiles/depsurf_btf.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/depsurf_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
