file(REMOVE_RECURSE
  "libdepsurf_bpf.a"
)
