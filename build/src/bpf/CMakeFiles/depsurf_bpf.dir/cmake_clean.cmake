file(REMOVE_RECURSE
  "CMakeFiles/depsurf_bpf.dir/bpf_builder.cc.o"
  "CMakeFiles/depsurf_bpf.dir/bpf_builder.cc.o.d"
  "CMakeFiles/depsurf_bpf.dir/bpf_codec.cc.o"
  "CMakeFiles/depsurf_bpf.dir/bpf_codec.cc.o.d"
  "CMakeFiles/depsurf_bpf.dir/bpf_object.cc.o"
  "CMakeFiles/depsurf_bpf.dir/bpf_object.cc.o.d"
  "CMakeFiles/depsurf_bpf.dir/core_reloc_engine.cc.o"
  "CMakeFiles/depsurf_bpf.dir/core_reloc_engine.cc.o.d"
  "libdepsurf_bpf.a"
  "libdepsurf_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
