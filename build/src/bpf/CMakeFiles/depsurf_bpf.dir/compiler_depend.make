# Empty compiler generated dependencies file for depsurf_bpf.
# This may be replaced when dependencies are built.
