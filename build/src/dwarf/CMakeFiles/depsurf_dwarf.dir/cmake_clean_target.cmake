file(REMOVE_RECURSE
  "libdepsurf_dwarf.a"
)
