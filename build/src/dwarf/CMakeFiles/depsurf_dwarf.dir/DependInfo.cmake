
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwarf/dwarf.cc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/dwarf.cc.o" "gcc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/dwarf.cc.o.d"
  "/root/repo/src/dwarf/dwarf_codec.cc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/dwarf_codec.cc.o" "gcc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/dwarf_codec.cc.o.d"
  "/root/repo/src/dwarf/function_view.cc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/function_view.cc.o" "gcc" "src/dwarf/CMakeFiles/depsurf_dwarf.dir/function_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
