file(REMOVE_RECURSE
  "CMakeFiles/depsurf_dwarf.dir/dwarf.cc.o"
  "CMakeFiles/depsurf_dwarf.dir/dwarf.cc.o.d"
  "CMakeFiles/depsurf_dwarf.dir/dwarf_codec.cc.o"
  "CMakeFiles/depsurf_dwarf.dir/dwarf_codec.cc.o.d"
  "CMakeFiles/depsurf_dwarf.dir/function_view.cc.o"
  "CMakeFiles/depsurf_dwarf.dir/function_view.cc.o.d"
  "libdepsurf_dwarf.a"
  "libdepsurf_dwarf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_dwarf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
