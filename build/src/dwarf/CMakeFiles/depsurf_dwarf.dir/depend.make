# Empty dependencies file for depsurf_dwarf.
# This may be replaced when dependencies are built.
