file(REMOVE_RECURSE
  "libdepsurf_kernelgen.a"
)
