# Empty compiler generated dependencies file for depsurf_kernelgen.
# This may be replaced when dependencies are built.
