file(REMOVE_RECURSE
  "CMakeFiles/depsurf_kernelgen.dir/compiler.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/compiler.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/configurator.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/configurator.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/corpus.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/corpus.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/evolution.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/evolution.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/image_builder.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/image_builder.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/name_corpus.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/name_corpus.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/rates.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/rates.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/scripted.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/scripted.cc.o.d"
  "CMakeFiles/depsurf_kernelgen.dir/syscalls.cc.o"
  "CMakeFiles/depsurf_kernelgen.dir/syscalls.cc.o.d"
  "libdepsurf_kernelgen.a"
  "libdepsurf_kernelgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_kernelgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
