
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelgen/compiler.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/compiler.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/compiler.cc.o.d"
  "/root/repo/src/kernelgen/configurator.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/configurator.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/configurator.cc.o.d"
  "/root/repo/src/kernelgen/corpus.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/corpus.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/corpus.cc.o.d"
  "/root/repo/src/kernelgen/evolution.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/evolution.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/evolution.cc.o.d"
  "/root/repo/src/kernelgen/image_builder.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/image_builder.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/image_builder.cc.o.d"
  "/root/repo/src/kernelgen/name_corpus.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/name_corpus.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/name_corpus.cc.o.d"
  "/root/repo/src/kernelgen/rates.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/rates.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/rates.cc.o.d"
  "/root/repo/src/kernelgen/scripted.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/scripted.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/scripted.cc.o.d"
  "/root/repo/src/kernelgen/syscalls.cc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/syscalls.cc.o" "gcc" "src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/syscalls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kmodel/CMakeFiles/depsurf_kmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/depsurf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/btf/CMakeFiles/depsurf_btf.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/depsurf_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
