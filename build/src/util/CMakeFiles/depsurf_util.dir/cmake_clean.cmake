file(REMOVE_RECURSE
  "CMakeFiles/depsurf_util.dir/byte_buffer.cc.o"
  "CMakeFiles/depsurf_util.dir/byte_buffer.cc.o.d"
  "CMakeFiles/depsurf_util.dir/error.cc.o"
  "CMakeFiles/depsurf_util.dir/error.cc.o.d"
  "CMakeFiles/depsurf_util.dir/leb128.cc.o"
  "CMakeFiles/depsurf_util.dir/leb128.cc.o.d"
  "CMakeFiles/depsurf_util.dir/prng.cc.o"
  "CMakeFiles/depsurf_util.dir/prng.cc.o.d"
  "CMakeFiles/depsurf_util.dir/str_util.cc.o"
  "CMakeFiles/depsurf_util.dir/str_util.cc.o.d"
  "CMakeFiles/depsurf_util.dir/table.cc.o"
  "CMakeFiles/depsurf_util.dir/table.cc.o.d"
  "libdepsurf_util.a"
  "libdepsurf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
