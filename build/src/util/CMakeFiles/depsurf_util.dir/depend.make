# Empty dependencies file for depsurf_util.
# This may be replaced when dependencies are built.
