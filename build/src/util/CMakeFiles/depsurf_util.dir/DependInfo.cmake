
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byte_buffer.cc" "src/util/CMakeFiles/depsurf_util.dir/byte_buffer.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/byte_buffer.cc.o.d"
  "/root/repo/src/util/error.cc" "src/util/CMakeFiles/depsurf_util.dir/error.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/error.cc.o.d"
  "/root/repo/src/util/leb128.cc" "src/util/CMakeFiles/depsurf_util.dir/leb128.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/leb128.cc.o.d"
  "/root/repo/src/util/prng.cc" "src/util/CMakeFiles/depsurf_util.dir/prng.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/prng.cc.o.d"
  "/root/repo/src/util/str_util.cc" "src/util/CMakeFiles/depsurf_util.dir/str_util.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/str_util.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/depsurf_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/depsurf_util.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
