file(REMOVE_RECURSE
  "libdepsurf_util.a"
)
