file(REMOVE_RECURSE
  "libdepsurf_elf.a"
)
