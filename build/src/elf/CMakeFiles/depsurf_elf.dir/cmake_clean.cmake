file(REMOVE_RECURSE
  "CMakeFiles/depsurf_elf.dir/elf_reader.cc.o"
  "CMakeFiles/depsurf_elf.dir/elf_reader.cc.o.d"
  "CMakeFiles/depsurf_elf.dir/elf_writer.cc.o"
  "CMakeFiles/depsurf_elf.dir/elf_writer.cc.o.d"
  "libdepsurf_elf.a"
  "libdepsurf_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
