# Empty dependencies file for depsurf_elf.
# This may be replaced when dependencies are built.
