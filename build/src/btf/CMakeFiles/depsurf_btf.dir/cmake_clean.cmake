file(REMOVE_RECURSE
  "CMakeFiles/depsurf_btf.dir/btf.cc.o"
  "CMakeFiles/depsurf_btf.dir/btf.cc.o.d"
  "CMakeFiles/depsurf_btf.dir/btf_codec.cc.o"
  "CMakeFiles/depsurf_btf.dir/btf_codec.cc.o.d"
  "CMakeFiles/depsurf_btf.dir/btf_compare.cc.o"
  "CMakeFiles/depsurf_btf.dir/btf_compare.cc.o.d"
  "CMakeFiles/depsurf_btf.dir/btf_print.cc.o"
  "CMakeFiles/depsurf_btf.dir/btf_print.cc.o.d"
  "libdepsurf_btf.a"
  "libdepsurf_btf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_btf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
