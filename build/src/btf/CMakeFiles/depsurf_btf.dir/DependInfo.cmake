
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btf/btf.cc" "src/btf/CMakeFiles/depsurf_btf.dir/btf.cc.o" "gcc" "src/btf/CMakeFiles/depsurf_btf.dir/btf.cc.o.d"
  "/root/repo/src/btf/btf_codec.cc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_codec.cc.o" "gcc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_codec.cc.o.d"
  "/root/repo/src/btf/btf_compare.cc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_compare.cc.o" "gcc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_compare.cc.o.d"
  "/root/repo/src/btf/btf_print.cc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_print.cc.o" "gcc" "src/btf/CMakeFiles/depsurf_btf.dir/btf_print.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
