file(REMOVE_RECURSE
  "libdepsurf_btf.a"
)
