# Empty compiler generated dependencies file for depsurf_btf.
# This may be replaced when dependencies are built.
