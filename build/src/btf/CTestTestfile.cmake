# CMake generated Testfile for 
# Source directory: /root/repo/src/btf
# Build directory: /root/repo/build/src/btf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
