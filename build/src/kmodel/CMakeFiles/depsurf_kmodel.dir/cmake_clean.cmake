file(REMOVE_RECURSE
  "CMakeFiles/depsurf_kmodel.dir/build_spec.cc.o"
  "CMakeFiles/depsurf_kmodel.dir/build_spec.cc.o.d"
  "CMakeFiles/depsurf_kmodel.dir/kernel_version.cc.o"
  "CMakeFiles/depsurf_kmodel.dir/kernel_version.cc.o.d"
  "CMakeFiles/depsurf_kmodel.dir/type_lang.cc.o"
  "CMakeFiles/depsurf_kmodel.dir/type_lang.cc.o.d"
  "libdepsurf_kmodel.a"
  "libdepsurf_kmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_kmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
