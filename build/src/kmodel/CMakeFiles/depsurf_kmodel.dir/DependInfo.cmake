
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmodel/build_spec.cc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/build_spec.cc.o" "gcc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/build_spec.cc.o.d"
  "/root/repo/src/kmodel/kernel_version.cc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/kernel_version.cc.o" "gcc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/kernel_version.cc.o.d"
  "/root/repo/src/kmodel/type_lang.cc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/type_lang.cc.o" "gcc" "src/kmodel/CMakeFiles/depsurf_kmodel.dir/type_lang.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/depsurf_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/btf/CMakeFiles/depsurf_btf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
