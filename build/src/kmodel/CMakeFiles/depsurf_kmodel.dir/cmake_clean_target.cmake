file(REMOVE_RECURSE
  "libdepsurf_kmodel.a"
)
