# Empty compiler generated dependencies file for depsurf_kmodel.
# This may be replaced when dependencies are built.
