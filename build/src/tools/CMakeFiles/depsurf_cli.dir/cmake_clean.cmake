file(REMOVE_RECURSE
  "CMakeFiles/depsurf_cli.dir/depsurf_cli.cc.o"
  "CMakeFiles/depsurf_cli.dir/depsurf_cli.cc.o.d"
  "depsurf"
  "depsurf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
