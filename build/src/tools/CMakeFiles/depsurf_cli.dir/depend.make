# Empty dependencies file for depsurf_cli.
# This may be replaced when dependencies are built.
