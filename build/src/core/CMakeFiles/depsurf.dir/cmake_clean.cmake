file(REMOVE_RECURSE
  "CMakeFiles/depsurf.dir/dataset.cc.o"
  "CMakeFiles/depsurf.dir/dataset.cc.o.d"
  "CMakeFiles/depsurf.dir/dataset_io.cc.o"
  "CMakeFiles/depsurf.dir/dataset_io.cc.o.d"
  "CMakeFiles/depsurf.dir/dependency_set.cc.o"
  "CMakeFiles/depsurf.dir/dependency_set.cc.o.d"
  "CMakeFiles/depsurf.dir/dependency_surface.cc.o"
  "CMakeFiles/depsurf.dir/dependency_surface.cc.o.d"
  "CMakeFiles/depsurf.dir/report.cc.o"
  "CMakeFiles/depsurf.dir/report.cc.o.d"
  "CMakeFiles/depsurf.dir/surface_diff.cc.o"
  "CMakeFiles/depsurf.dir/surface_diff.cc.o.d"
  "libdepsurf.a"
  "libdepsurf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
