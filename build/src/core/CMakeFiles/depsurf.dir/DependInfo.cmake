
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/depsurf.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/dataset.cc.o.d"
  "/root/repo/src/core/dataset_io.cc" "src/core/CMakeFiles/depsurf.dir/dataset_io.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/dataset_io.cc.o.d"
  "/root/repo/src/core/dependency_set.cc" "src/core/CMakeFiles/depsurf.dir/dependency_set.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/dependency_set.cc.o.d"
  "/root/repo/src/core/dependency_surface.cc" "src/core/CMakeFiles/depsurf.dir/dependency_surface.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/dependency_surface.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/depsurf.dir/report.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/report.cc.o.d"
  "/root/repo/src/core/surface_diff.cc" "src/core/CMakeFiles/depsurf.dir/surface_diff.cc.o" "gcc" "src/core/CMakeFiles/depsurf.dir/surface_diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bpf/CMakeFiles/depsurf_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/depsurf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/btf/CMakeFiles/depsurf_btf.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/depsurf_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kmodel/CMakeFiles/depsurf_kmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
