# Empty compiler generated dependencies file for depsurf.
# This may be replaced when dependencies are built.
