file(REMOVE_RECURSE
  "libdepsurf.a"
)
