# Empty compiler generated dependencies file for depsurf_bpfgen.
# This may be replaced when dependencies are built.
