file(REMOVE_RECURSE
  "CMakeFiles/depsurf_bpfgen.dir/dep_pools.cc.o"
  "CMakeFiles/depsurf_bpfgen.dir/dep_pools.cc.o.d"
  "CMakeFiles/depsurf_bpfgen.dir/program_corpus.cc.o"
  "CMakeFiles/depsurf_bpfgen.dir/program_corpus.cc.o.d"
  "CMakeFiles/depsurf_bpfgen.dir/table7.cc.o"
  "CMakeFiles/depsurf_bpfgen.dir/table7.cc.o.d"
  "libdepsurf_bpfgen.a"
  "libdepsurf_bpfgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_bpfgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
