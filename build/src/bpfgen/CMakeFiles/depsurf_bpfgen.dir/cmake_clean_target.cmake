file(REMOVE_RECURSE
  "libdepsurf_bpfgen.a"
)
