file(REMOVE_RECURSE
  "CMakeFiles/depsurf_study.dir/study.cc.o"
  "CMakeFiles/depsurf_study.dir/study.cc.o.d"
  "libdepsurf_study.a"
  "libdepsurf_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depsurf_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
