file(REMOVE_RECURSE
  "libdepsurf_study.a"
)
