# Empty dependencies file for depsurf_study.
# This may be replaced when dependencies are built.
