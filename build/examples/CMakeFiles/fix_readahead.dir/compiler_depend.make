# Empty compiler generated dependencies file for fix_readahead.
# This may be replaced when dependencies are built.
