file(REMOVE_RECURSE
  "CMakeFiles/fix_readahead.dir/fix_readahead.cc.o"
  "CMakeFiles/fix_readahead.dir/fix_readahead.cc.o.d"
  "fix_readahead"
  "fix_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
