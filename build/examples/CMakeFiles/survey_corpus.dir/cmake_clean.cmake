file(REMOVE_RECURSE
  "CMakeFiles/survey_corpus.dir/survey_corpus.cc.o"
  "CMakeFiles/survey_corpus.dir/survey_corpus.cc.o.d"
  "survey_corpus"
  "survey_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
