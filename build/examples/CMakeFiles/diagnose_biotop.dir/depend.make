# Empty dependencies file for diagnose_biotop.
# This may be replaced when dependencies are built.
