file(REMOVE_RECURSE
  "CMakeFiles/diagnose_biotop.dir/diagnose_biotop.cc.o"
  "CMakeFiles/diagnose_biotop.dir/diagnose_biotop.cc.o.d"
  "diagnose_biotop"
  "diagnose_biotop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_biotop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
