
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/depsurf_study.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/depsurf.dir/DependInfo.cmake"
  "/root/repo/build/src/bpfgen/CMakeFiles/depsurf_bpfgen.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/depsurf_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelgen/CMakeFiles/depsurf_kernelgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/depsurf_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/kmodel/CMakeFiles/depsurf_kmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/btf/CMakeFiles/depsurf_btf.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/depsurf_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/depsurf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
