# Empty dependencies file for core_reloc_engine_test.
# This may be replaced when dependencies are built.
