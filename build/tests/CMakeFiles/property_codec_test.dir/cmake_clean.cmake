file(REMOVE_RECURSE
  "CMakeFiles/property_codec_test.dir/property_codec_test.cc.o"
  "CMakeFiles/property_codec_test.dir/property_codec_test.cc.o.d"
  "property_codec_test"
  "property_codec_test.pdb"
  "property_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
