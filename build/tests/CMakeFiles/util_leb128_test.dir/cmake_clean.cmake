file(REMOVE_RECURSE
  "CMakeFiles/util_leb128_test.dir/util_leb128_test.cc.o"
  "CMakeFiles/util_leb128_test.dir/util_leb128_test.cc.o.d"
  "util_leb128_test"
  "util_leb128_test.pdb"
  "util_leb128_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_leb128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
