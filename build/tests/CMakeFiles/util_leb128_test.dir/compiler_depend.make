# Empty compiler generated dependencies file for util_leb128_test.
# This may be replaced when dependencies are built.
