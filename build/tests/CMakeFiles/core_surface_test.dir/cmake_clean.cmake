file(REMOVE_RECURSE
  "CMakeFiles/core_surface_test.dir/core_surface_test.cc.o"
  "CMakeFiles/core_surface_test.dir/core_surface_test.cc.o.d"
  "core_surface_test"
  "core_surface_test.pdb"
  "core_surface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
