# Empty dependencies file for core_surface_test.
# This may be replaced when dependencies are built.
