# Empty dependencies file for dwarf_test.
# This may be replaced when dependencies are built.
