file(REMOVE_RECURSE
  "CMakeFiles/dwarf_test.dir/dwarf_test.cc.o"
  "CMakeFiles/dwarf_test.dir/dwarf_test.cc.o.d"
  "dwarf_test"
  "dwarf_test.pdb"
  "dwarf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
