# Empty dependencies file for util_str_table_test.
# This may be replaced when dependencies are built.
