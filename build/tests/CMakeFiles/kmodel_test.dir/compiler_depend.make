# Empty compiler generated dependencies file for kmodel_test.
# This may be replaced when dependencies are built.
