file(REMOVE_RECURSE
  "CMakeFiles/kmodel_test.dir/kmodel_test.cc.o"
  "CMakeFiles/kmodel_test.dir/kmodel_test.cc.o.d"
  "kmodel_test"
  "kmodel_test.pdb"
  "kmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
