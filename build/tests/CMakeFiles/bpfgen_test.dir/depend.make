# Empty dependencies file for bpfgen_test.
# This may be replaced when dependencies are built.
