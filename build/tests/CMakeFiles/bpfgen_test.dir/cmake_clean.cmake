file(REMOVE_RECURSE
  "CMakeFiles/bpfgen_test.dir/bpfgen_test.cc.o"
  "CMakeFiles/bpfgen_test.dir/bpfgen_test.cc.o.d"
  "bpfgen_test"
  "bpfgen_test.pdb"
  "bpfgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
