# Empty dependencies file for btf_test.
# This may be replaced when dependencies are built.
