file(REMOVE_RECURSE
  "CMakeFiles/btf_test.dir/btf_test.cc.o"
  "CMakeFiles/btf_test.dir/btf_test.cc.o.d"
  "btf_test"
  "btf_test.pdb"
  "btf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
