# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_byte_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/util_leb128_test[1]_include.cmake")
include("/root/repo/build/tests/util_prng_test[1]_include.cmake")
include("/root/repo/build/tests/util_str_table_test[1]_include.cmake")
include("/root/repo/build/tests/elf_test[1]_include.cmake")
include("/root/repo/build/tests/btf_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_test[1]_include.cmake")
include("/root/repo/build/tests/kmodel_test[1]_include.cmake")
include("/root/repo/build/tests/kernelgen_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_test[1]_include.cmake")
include("/root/repo/build/tests/core_surface_test[1]_include.cmake")
include("/root/repo/build/tests/core_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/bpfgen_test[1]_include.cmake")
include("/root/repo/build/tests/property_codec_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/core_reloc_engine_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_io_test[1]_include.cmake")
