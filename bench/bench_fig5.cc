// Regenerates Figure 5: percentages of functions fully and selectively
// inlined, across the 17 kernel versions (x86) and the 4 extra
// architectures at v5.4.
//
//   $ bench_fig5 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

void MeasureRow(TextTable& table, const std::string& label,
                const DependencySurface& surface) {
  size_t total = surface.functions().size();
  size_t full = 0;
  size_t selective = 0;
  for (const auto& [name, entry] : surface.functions()) {
    (void)name;
    if (entry.status.fully_inlined) {
      ++full;
    } else if (entry.status.selectively_inlined) {
      ++selective;
    }
  }
  table.AddRow({label, FormatCount(total),
                FormatPercent(static_cast<double>(full) / total),
                FormatPercent(static_cast<double>(selective) / total)});
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Figure 5: functions fully and selectively inlined (scale %.2f)\n",
         study.options().scale);
  printf("paper reference: 32-36%% fully inlined, 9-11%% selectively inlined, with only\n"
         "a few percent variation across versions and architectures\n\n");

  obs::BenchReporter bench("fig5");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  TextTable table({"image", "#funcs (debug info)", "fully inlined", "selectively inlined"});
  {
    auto stage = bench.Stage("extract_versions");
    for (KernelVersion version : kStudyVersions) {
      auto surface = study.ExtractSurface(MakeBuild(version));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      MeasureRow(table, version.Tag(), *surface);
    }
  }
  table.AddSeparator();
  constexpr KernelVersion kV54{5, 4};
  {
    auto stage = bench.Stage("extract_arches");
    for (Arch arch : {Arch::kArm64, Arch::kArm32, Arch::kPpc, Arch::kRiscv}) {
      auto surface = study.ExtractSurface(MakeBuild(kV54, arch));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      MeasureRow(table, StrFormat("v5.4-%s", ArchName(arch)), *surface);
    }
  }
  printf("%s", table.Render().c_str());
  return 0;
}
