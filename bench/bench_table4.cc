// Regenerates Table 4: breakdown of kernel source-code changes between
// consecutive LTS versions (which mutation kinds each changed construct
// exhibits; kinds co-occur so percentages exceed 100%).
//
//   $ bench_table4 [--scale=1.0]
#include <cstdio>
#include <optional>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

struct Breakdown {
  std::string span;
  size_t funcs_changed = 0;
  double param_added = 0, param_removed = 0, param_reordered = 0, param_type = 0, ret_type = 0;
  size_t structs_changed = 0;
  double field_added = 0, field_removed = 0, field_type = 0;
  size_t tracepts_changed = 0;
  double event_changed = 0, func_changed = 0;
};

Breakdown Measure(const DependencySurface& older, const DependencySurface& newer) {
  Breakdown b;
  b.span = StrFormat("%d.%d - %d.%d", older.meta().version_major, older.meta().version_minor,
                     newer.meta().version_major, newer.meta().version_minor);
  SurfaceDiff diff = DiffSurfaces(older, newer);

  b.funcs_changed = diff.funcs.changed.size();
  for (const auto& [name, kinds] : diff.funcs.changed) {
    (void)name;
    for (FuncChangeKind kind : kinds) {
      switch (kind) {
        case FuncChangeKind::kParamAdded:
          b.param_added += 1;
          break;
        case FuncChangeKind::kParamRemoved:
          b.param_removed += 1;
          break;
        case FuncChangeKind::kParamReordered:
          b.param_reordered += 1;
          break;
        case FuncChangeKind::kParamTypeChanged:
          b.param_type += 1;
          break;
        case FuncChangeKind::kReturnTypeChanged:
          b.ret_type += 1;
          break;
      }
    }
  }
  b.structs_changed = diff.structs.changed.size();
  for (const auto& [name, kinds] : diff.structs.changed) {
    (void)name;
    for (StructChangeKind kind : kinds) {
      switch (kind) {
        case StructChangeKind::kFieldAdded:
          b.field_added += 1;
          break;
        case StructChangeKind::kFieldRemoved:
          b.field_removed += 1;
          break;
        case StructChangeKind::kFieldTypeChanged:
          b.field_type += 1;
          break;
      }
    }
  }
  b.tracepts_changed = diff.tracepoints.changed.size();
  for (const auto& [name, kinds] : diff.tracepoints.changed) {
    (void)name;
    for (TracepointChangeKind kind : kinds) {
      if (kind == TracepointChangeKind::kEventChanged) {
        b.event_changed += 1;
      } else {
        b.func_changed += 1;
      }
    }
  }
  return b;
}

std::string Frac(double count, size_t total) {
  return total == 0 ? "-" : FormatPercent(count / static_cast<double>(total));
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Table 4: breakdown of kernel source code changes (scale %.2f)\n",
         study.options().scale);
  printf("paper reference: param added 51-60%%, removed 36-48%%, reordered 19-25%%,\n"
         "type 23-26%%, return 13-21%% | field added 72-75%%, removed 40-42%%, type\n"
         "32-37%% | tracepoint event 81-95%%, func 32-54%%\n\n");

  obs::BenchReporter bench("table4");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  std::vector<Breakdown> rows;
  {
    auto stage = bench.Stage("extract_and_diff_lts");
    std::optional<DependencySurface> prev;
    for (KernelVersion version : kLtsVersions) {
      auto surface = study.ExtractSurface(MakeBuild(version));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      if (prev.has_value()) {
        rows.push_back(Measure(*prev, *surface));
      }
      prev = surface.TakeValue();
    }
  }

  TextTable funcs({"span", "no. changed", "param added", "param removed", "param reordered",
                   "param type", "return type"});
  TextTable structs({"span", "no. changed", "field added", "field removed", "field type"});
  TextTable tracepts({"span", "no. changed", "event changed", "func changed"});
  for (const Breakdown& b : rows) {
    funcs.AddRow({b.span, FormatCount(b.funcs_changed), Frac(b.param_added, b.funcs_changed),
                  Frac(b.param_removed, b.funcs_changed),
                  Frac(b.param_reordered, b.funcs_changed), Frac(b.param_type, b.funcs_changed),
                  Frac(b.ret_type, b.funcs_changed)});
    structs.AddRow({b.span, FormatCount(b.structs_changed),
                    Frac(b.field_added, b.structs_changed),
                    Frac(b.field_removed, b.structs_changed),
                    Frac(b.field_type, b.structs_changed)});
    tracepts.AddRow({b.span, std::to_string(b.tracepts_changed),
                     Frac(b.event_changed, b.tracepts_changed),
                     Frac(b.func_changed, b.tracepts_changed)});
  }
  printf("-- functions --\n%s\n", funcs.Render().c_str());
  printf("-- structs --\n%s\n", structs.Render().c_str());
  printf("-- tracepoints --\n%s", tracepts.Render().c_str());
  return 0;
}
