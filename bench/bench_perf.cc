// Performance of the analysis pipeline (paper §3.4: surface extraction
// averaged 104 s/image with pyelftools; diffing 17 images took 3 s;
// dependency-set analysis a fraction of a second).
//
// Google-benchmark binary. Default scale 0.1 keeps iterations fast; pass
// --scale=1.0 for paper-scale images (extraction lands in seconds, far
// below the Python implementation's 104 s).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/analyzer/analyzer.h"
#include "src/bpfgen/program_corpus.h"
#include "src/obs/bench_report.h"
#include "src/obs/profile.h"
#include "src/study/study.h"
#include "src/util/str_util.h"

using namespace depsurf;

namespace {

double g_scale = 0.1;

// Console reporter that additionally folds every benchmark run into the
// shared BENCH_perf.json report (per-run wall time + iteration count).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(obs::BenchReporter* bench) : bench_(bench) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      obs::BenchStage stage;
      stage.name = run.benchmark_name();
      stage.seconds = run.real_accumulated_time;
      stage.items = static_cast<uint64_t>(run.iterations);
      bench_->AddStage(stage);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReporter* bench_;
};

Study& SharedStudy() {
  static Study study(StudyOptions{2025, g_scale});
  return study;
}

const std::vector<uint8_t>& ImageBytes(KernelVersion version) {
  static std::map<uint64_t, std::vector<uint8_t>> cache;
  BuildSpec build = MakeBuild(version);
  auto it = cache.find(build.Key());
  if (it == cache.end()) {
    auto bytes = SharedStudy().BuildImage(build);
    it = cache.emplace(build.Key(), bytes.ok() ? bytes.TakeValue() : std::vector<uint8_t>())
             .first;
  }
  return it->second;
}

void BM_GenerateImage(benchmark::State& state) {
  for (auto _ : state) {
    auto bytes = SharedStudy().BuildImage(MakeBuild(KernelVersion(5, 4)));
    benchmark::DoNotOptimize(bytes.ok());
  }
}
BENCHMARK(BM_GenerateImage)->Unit(benchmark::kMillisecond);

void BM_ExtractSurface(benchmark::State& state) {
  const auto& bytes = ImageBytes(KernelVersion(5, 4));
  for (auto _ : state) {
    auto copy = bytes;
    auto surface = DependencySurface::Extract(std::move(copy));
    benchmark::DoNotOptimize(surface.ok());
  }
}
BENCHMARK(BM_ExtractSurface)->Unit(benchmark::kMillisecond);

void BM_DiffSurfaces(benchmark::State& state) {
  auto a = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
  auto b = DependencySurface::Extract(ImageBytes(KernelVersion(5, 15)));
  for (auto _ : state) {
    SurfaceDiff diff = DiffSurfaces(*a, *b);
    benchmark::DoNotOptimize(diff.funcs.changed.size());
  }
}
BENCHMARK(BM_DiffSurfaces)->Unit(benchmark::kMillisecond);

void BM_DistillIntoDataset(benchmark::State& state) {
  auto surface = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
  for (auto _ : state) {
    Dataset dataset;
    dataset.AddImage("v5.4", *surface);
    benchmark::DoNotOptimize(dataset.num_images());
  }
}
BENCHMARK(BM_DistillIntoDataset)->Unit(benchmark::kMillisecond);

void BM_AnalyzeProgram(benchmark::State& state) {
  static Dataset dataset = [] {
    Dataset d;
    for (KernelVersion version : kLtsVersions) {
      auto surface = DependencySurface::Extract(ImageBytes(version));
      d.AddImage(version.Tag(), *surface);
    }
    return d;
  }();
  for (auto _ : state) {
    auto report = SharedStudy().Analyze(dataset, "biotop");
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_AnalyzeProgram)->Unit(benchmark::kMicrosecond);

// Emits PROFILE_build_reports_jobs<N>.json (depsurf.profile.v1) from the
// aggregate report of the last BM_BuildDatasetReports iteration, into
// $DEPSURF_BENCH_DIR (or the working directory), so perf_gate.sh can lint
// the self-profile schema alongside the bench trajectories.
void WriteBuildProfile(const std::string& aggregate_path, int jobs) {
  std::ifstream in(aggregate_path, std::ios::binary);
  if (!in) {
    return;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  auto profile = obs::ProfileFromReportJson(text);
  if (!profile.ok()) {
    return;
  }
  obs::FillExecutorStats(*profile, obs::MetricsRegistry::Global());
  const char* dir = getenv("DEPSURF_BENCH_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") +
                     StrFormat("/PROFILE_build_reports_jobs%d.json", jobs);
  std::ofstream out(path, std::ios::binary);
  out << obs::ProfileJson(*profile);
}

// Report-mode corpus build at jobs=1 vs jobs=8: the ratio of the two rows
// is the parallel speedup bought by context-scoped observability (the old
// report path was serial by construction, so its "speedup" was fixed at 1).
// Owns the mkdtemp scratch directory the report-mode benchmark writes
// into, removing the whole tree when the process exits (the static's
// destructor is the in-process mirror of perf_gate.sh's EXIT trap; the
// old code leaked the directory on every run).
struct ScratchReportDir {
  ScratchReportDir() {
    char tmpl[] = "/tmp/depsurf_bench_reports_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    path = dir != nullptr ? dir : ".";
  }
  ~ScratchReportDir() {
    if (path != ".") {
      std::error_code ec;  // best effort: never throw during exit
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

void BM_BuildDatasetReports(benchmark::State& state) {
  static const ScratchReportDir scratch;
  const std::string& report_dir = scratch.path;
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }
  BuildPolicy policy;
  policy.jobs = static_cast<int>(state.range(0));
  Study::DatasetReportFiles files;
  for (auto _ : state) {
    auto dataset =
        SharedStudy().BuildDatasetWithReports(corpus, report_dir, &files, {}, policy);
    benchmark::DoNotOptimize(dataset.ok());
  }
  WriteBuildProfile(files.aggregate, policy.jobs);
}
BENCHMARK(BM_BuildDatasetReports)
    ->ArgName("jobs")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Static analysis (CFG + abstract interpretation) over the full 53-program
// corpus plus the two analyzer showcase objects, one pass per iteration.
void BM_AnalyzeCorpus(benchmark::State& state) {
  static const std::vector<BpfObject> objects = [] {
    std::vector<BpfObject> out = BuildProgramCorpus().objects;
    out.push_back(BuildGuardedProbe());
    out.push_back(BuildRawOffsetProbe());
    return out;
  }();
  size_t findings = 0;
  for (auto _ : state) {
    for (const BpfObject& object : objects) {
      ObjectAnalysis analysis = AnalyzeObject(object);
      findings += analysis.findings.size();
    }
    benchmark::DoNotOptimize(findings);
  }
}
BENCHMARK(BM_AnalyzeCorpus)->Unit(benchmark::kMillisecond);

void BM_DatasetQuery(benchmark::State& state) {
  static Dataset dataset = [] {
    Dataset d;
    auto surface = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
    d.AddImage("v5.4", *surface);
    return d;
  }();
  for (auto _ : state) {
    auto cells = dataset.CheckFunc("vfs_fsync");
    benchmark::DoNotOptimize(cells.size());
  }
}
BENCHMARK(BM_DatasetQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--scale=", 8) == 0) {
      g_scale = atof(argv[i] + 8);
    }
  }
  printf("analysis performance at scale %.2f (paper, at scale 1.0 in Python:\n"
         "extraction 104 s/image, 17-image diff 3 s, per-program analysis <1 s)\n",
         g_scale);
  obs::BenchReporter bench("perf");
  bench.AddNote("scale", StrFormat("%.2f", g_scale));
  JsonTeeReporter reporter(&bench);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
