// Performance of the analysis pipeline (paper §3.4: surface extraction
// averaged 104 s/image with pyelftools; diffing 17 images took 3 s;
// dependency-set analysis a fraction of a second).
//
// Google-benchmark binary. Default scale 0.1 keeps iterations fast; pass
// --scale=1.0 for paper-scale images (extraction lands in seconds, far
// below the Python implementation's 104 s).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/remediation.h"
#include "src/bpf/bpf_rewriter.h"
#include "src/bpfgen/program_corpus.h"
#include "src/core/dataset_io.h"
#include "src/obs/bench_report.h"
#include "src/obs/profile.h"
#include "src/serve/serve.h"
#include "src/study/study.h"
#include "src/util/str_util.h"

using namespace depsurf;

namespace {

double g_scale = 0.1;

// Console reporter that additionally folds every benchmark run into the
// shared BENCH_perf.json report (per-run wall time + iteration count). The
// serve benchmarks are mirrored into BENCH_serve.json and the analyzer
// benchmarks (corpus analysis + remediation) into BENCH_analyzer.json, so
// the perf gate can assert each subsystem from one document.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  JsonTeeReporter(obs::BenchReporter* bench, obs::BenchReporter* serve,
                  obs::BenchReporter* analyzer)
      : bench_(bench), serve_(serve), analyzer_(analyzer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      obs::BenchStage stage;
      stage.name = run.benchmark_name();
      stage.seconds = run.real_accumulated_time;
      stage.items = static_cast<uint64_t>(run.iterations);
      bench_->AddStage(stage);
      if (stage.name.rfind("BM_Serve", 0) == 0 ||
          stage.name.rfind("BM_CheckV1Reparse", 0) == 0) {
        serve_->AddStage(stage);
      }
      if (stage.name.rfind("BM_AnalyzeCorpus", 0) == 0 ||
          stage.name.rfind("BM_FixCorpus", 0) == 0) {
        analyzer_->AddStage(stage);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReporter* bench_;
  obs::BenchReporter* serve_;
  obs::BenchReporter* analyzer_;
};

Study& SharedStudy() {
  static Study study(StudyOptions{2025, g_scale});
  return study;
}

const std::vector<uint8_t>& ImageBytes(KernelVersion version) {
  static std::map<uint64_t, std::vector<uint8_t>> cache;
  BuildSpec build = MakeBuild(version);
  auto it = cache.find(build.Key());
  if (it == cache.end()) {
    auto bytes = SharedStudy().BuildImage(build);
    it = cache.emplace(build.Key(), bytes.ok() ? bytes.TakeValue() : std::vector<uint8_t>())
             .first;
  }
  return it->second;
}

void BM_GenerateImage(benchmark::State& state) {
  for (auto _ : state) {
    auto bytes = SharedStudy().BuildImage(MakeBuild(KernelVersion(5, 4)));
    benchmark::DoNotOptimize(bytes.ok());
  }
}
BENCHMARK(BM_GenerateImage)->Unit(benchmark::kMillisecond);

void BM_ExtractSurface(benchmark::State& state) {
  const auto& bytes = ImageBytes(KernelVersion(5, 4));
  for (auto _ : state) {
    auto copy = bytes;
    auto surface = DependencySurface::Extract(std::move(copy));
    benchmark::DoNotOptimize(surface.ok());
  }
}
BENCHMARK(BM_ExtractSurface)->Unit(benchmark::kMillisecond);

void BM_DiffSurfaces(benchmark::State& state) {
  auto a = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
  auto b = DependencySurface::Extract(ImageBytes(KernelVersion(5, 15)));
  for (auto _ : state) {
    SurfaceDiff diff = DiffSurfaces(*a, *b);
    benchmark::DoNotOptimize(diff.funcs.changed.size());
  }
}
BENCHMARK(BM_DiffSurfaces)->Unit(benchmark::kMillisecond);

void BM_DistillIntoDataset(benchmark::State& state) {
  auto surface = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
  for (auto _ : state) {
    Dataset dataset;
    dataset.AddImage("v5.4", *surface);
    benchmark::DoNotOptimize(dataset.num_images());
  }
}
BENCHMARK(BM_DistillIntoDataset)->Unit(benchmark::kMillisecond);

void BM_AnalyzeProgram(benchmark::State& state) {
  static Dataset dataset = [] {
    Dataset d;
    for (KernelVersion version : kLtsVersions) {
      auto surface = DependencySurface::Extract(ImageBytes(version));
      d.AddImage(version.Tag(), *surface);
    }
    return d;
  }();
  for (auto _ : state) {
    auto report = SharedStudy().Analyze(dataset, "biotop");
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_AnalyzeProgram)->Unit(benchmark::kMicrosecond);

// Emits PROFILE_build_reports_jobs<N>.json (depsurf.profile.v1) from the
// aggregate report of the last BM_BuildDatasetReports iteration, into
// $DEPSURF_BENCH_DIR (or the working directory), so perf_gate.sh can lint
// the self-profile schema alongside the bench trajectories.
void WriteBuildProfile(const std::string& aggregate_path, int jobs) {
  std::ifstream in(aggregate_path, std::ios::binary);
  if (!in) {
    return;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  auto profile = obs::ProfileFromReportJson(text);
  if (!profile.ok()) {
    return;
  }
  obs::FillExecutorStats(*profile, obs::MetricsRegistry::Global());
  const char* dir = getenv("DEPSURF_BENCH_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") +
                     StrFormat("/PROFILE_build_reports_jobs%d.json", jobs);
  std::ofstream out(path, std::ios::binary);
  out << obs::ProfileJson(*profile);
}

// Report-mode corpus build at jobs=1 vs jobs=8: the ratio of the two rows
// is the parallel speedup bought by context-scoped observability (the old
// report path was serial by construction, so its "speedup" was fixed at 1).
// Owns the mkdtemp scratch directory the report-mode benchmark writes
// into, removing the whole tree when the process exits (the static's
// destructor is the in-process mirror of perf_gate.sh's EXIT trap; the
// old code leaked the directory on every run).
struct ScratchReportDir {
  ScratchReportDir() {
    char tmpl[] = "/tmp/depsurf_bench_reports_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    path = dir != nullptr ? dir : ".";
  }
  ~ScratchReportDir() {
    if (path != ".") {
      std::error_code ec;  // best effort: never throw during exit
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

void BM_BuildDatasetReports(benchmark::State& state) {
  static const ScratchReportDir scratch;
  const std::string& report_dir = scratch.path;
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }
  BuildPolicy policy;
  policy.jobs = static_cast<int>(state.range(0));
  Study::DatasetReportFiles files;
  for (auto _ : state) {
    auto dataset =
        SharedStudy().BuildDatasetWithReports(corpus, report_dir, &files, {}, policy);
    benchmark::DoNotOptimize(dataset.ok());
  }
  WriteBuildProfile(files.aggregate, policy.jobs);
}
BENCHMARK(BM_BuildDatasetReports)
    ->ArgName("jobs")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Static analysis (CFG + abstract interpretation) over the full 53-program
// corpus plus the two analyzer showcase objects, one pass per iteration.
void BM_AnalyzeCorpus(benchmark::State& state) {
  static const std::vector<BpfObject> objects = [] {
    std::vector<BpfObject> out = BuildProgramCorpus().objects;
    out.push_back(BuildGuardedProbe());
    out.push_back(BuildRawOffsetProbe());
    return out;
  }();
  size_t findings = 0;
  for (auto _ : state) {
    for (const BpfObject& object : objects) {
      ObjectAnalysis analysis = AnalyzeObject(object);
      findings += analysis.findings.size();
    }
    benchmark::DoNotOptimize(findings);
  }
}
BENCHMARK(BM_AnalyzeCorpus)->Unit(benchmark::kMillisecond);

// The full remediation pipeline over the same corpus: analyze, plan guard
// insertions, rewrite the instruction streams, and re-encode to ELF bytes
// (the `depsurf fix` hot path minus the re-analysis verification).
void BM_FixCorpus(benchmark::State& state) {
  static const std::vector<BpfObject> objects = [] {
    std::vector<BpfObject> out = BuildProgramCorpus().objects;
    out.push_back(BuildGuardedProbe());
    out.push_back(BuildRawOffsetProbe());
    return out;
  }();
  size_t bytes_written = 0;
  for (auto _ : state) {
    for (const BpfObject& object : objects) {
      ObjectAnalysis analysis = AnalyzeObject(object);
      RemediationPlan plan = PlanRemediation(object, analysis);
      if (plan.FixableCount() == 0) {
        continue;
      }
      BpfObject fixed = object;
      if (!InsertFieldExistsGuards(fixed, plan.Insertions()).ok()) {
        continue;
      }
      auto encoded = WriteBpfObject(fixed);
      if (encoded.ok()) {
        bytes_written += encoded->size();
      }
    }
    benchmark::DoNotOptimize(bytes_written);
  }
}
BENCHMARK(BM_FixCorpus)->Unit(benchmark::kMillisecond);

// ---- dataset-as-a-service: cached-hit answering vs cold mmap open vs the
// old one-parse-per-query v1 path. The gate asserts the cached engine is at
// least 10x faster per query than re-parsing the v1 dataset every time.

struct ServeCorpus {
  std::string v1_path;
  std::string v2_path;
  std::vector<uint8_t> v1_bytes;
  DependencySet deps;
};

const ServeCorpus& SharedServeCorpus() {
  static const ServeCorpus corpus = [] {
    static const ScratchReportDir scratch;
    Dataset dataset;
    for (KernelVersion version : kLtsVersions) {
      auto surface = DependencySurface::Extract(ImageBytes(version));
      dataset.AddImage(version.Tag(), *surface);
    }
    ServeCorpus out;
    out.v1_bytes = SaveDataset(dataset);
    std::vector<uint8_t> v2 = SaveDatasetV2(dataset);
    out.v1_path = scratch.path + "/serve_v1.dds";
    out.v2_path = scratch.path + "/serve_v2.dds";
    for (const auto& [path, bytes] :
         {std::pair<std::string, const std::vector<uint8_t>*>{out.v1_path, &out.v1_bytes},
          {out.v2_path, &v2}}) {
      std::ofstream file(path, std::ios::binary);
      file.write(reinterpret_cast<const char*>(bytes->data()),
                 static_cast<std::streamsize>(bytes->size()));
    }
    auto programs = BuildProgramCorpus();
    for (const BpfObject& object : programs.objects) {
      if (object.name == "biotop") {
        out.deps = *ExtractDependencySet(object);
      }
    }
    return out;
  }();
  return corpus;
}

constexpr char kServeQueryLine[] =
    "{\"id\": 1, \"program\": \"biotop\", \"funcs\": [\"vfs_read\", \"blk_account_io_start\"],"
    " \"fields\": {\"request\": {\"rq_disk\": {\"type\": \"struct gendisk *\","
    " \"guarded\": false}}}, \"tracepoints\": [\"block_rq_issue\"],"
    " \"syscalls\": [\"openat\"]}";

// Steady-state serving: the engine is open, the result is in the admission
// cache, every batch is a pure hit.
void BM_ServeQueriesCached(benchmark::State& state) {
  static ServeEngine engine = [] {
    auto opened = ServeEngine::Open({SharedServeCorpus().v2_path}, ServeOptions{});
    if (!opened.ok()) {
      fprintf(stderr, "serve open failed: %s\n", opened.error().ToString().c_str());
      abort();
    }
    ServeEngine result = opened.TakeValue();
    result.HandleBatch({kServeQueryLine});  // pre-warm: admit the result
    return result;
  }();
  const std::vector<std::string> lines = {kServeQueryLine};
  for (auto _ : state) {
    auto responses = engine.HandleBatch(lines);
    benchmark::DoNotOptimize(responses.size());
  }
}
BENCHMARK(BM_ServeQueriesCached)->Unit(benchmark::kMicrosecond);

// Worst case: a fresh mmap open plus one uncached query per iteration.
// The v2 layout keeps this cheap — open touches only the header/section
// table pages, the query only the index pages binary search walks.
void BM_ServeQueriesColdMmap(benchmark::State& state) {
  const std::string path = SharedServeCorpus().v2_path;
  for (auto _ : state) {
    auto engine = ServeEngine::Open({path}, ServeOptions{});
    auto responses = engine->HandleBatch({kServeQueryLine});
    benchmark::DoNotOptimize(responses.size());
  }
}
BENCHMARK(BM_ServeQueriesColdMmap)->Unit(benchmark::kMicrosecond);

// The path `serve` replaces: parse the whole v1 dataset, answer one query,
// throw the parse away.
void BM_CheckV1ReparsePerQuery(benchmark::State& state) {
  const ServeCorpus& corpus = SharedServeCorpus();
  for (auto _ : state) {
    auto dataset = LoadDataset(corpus.v1_bytes);
    ProgramReport report = AnalyzeProgram(*dataset, corpus.deps);
    benchmark::DoNotOptimize(report.AnyMismatch());
  }
}
BENCHMARK(BM_CheckV1ReparsePerQuery)->Unit(benchmark::kMicrosecond);

void BM_DatasetQuery(benchmark::State& state) {
  static Dataset dataset = [] {
    Dataset d;
    auto surface = DependencySurface::Extract(ImageBytes(KernelVersion(5, 4)));
    d.AddImage("v5.4", *surface);
    return d;
  }();
  for (auto _ : state) {
    auto cells = dataset.CheckFunc("vfs_fsync");
    benchmark::DoNotOptimize(cells.size());
  }
}
BENCHMARK(BM_DatasetQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--scale=", 8) == 0) {
      g_scale = atof(argv[i] + 8);
    }
  }
  printf("analysis performance at scale %.2f (paper, at scale 1.0 in Python:\n"
         "extraction 104 s/image, 17-image diff 3 s, per-program analysis <1 s)\n",
         g_scale);
  obs::BenchReporter bench("perf");
  bench.AddNote("scale", StrFormat("%.2f", g_scale));
  obs::BenchReporter serve_bench("serve");
  serve_bench.AddNote("scale", StrFormat("%.2f", g_scale));
  obs::BenchReporter analyzer_bench("analyzer");
  analyzer_bench.AddNote("scale", StrFormat("%.2f", g_scale));
  JsonTeeReporter reporter(&bench, &serve_bench, &analyzer_bench);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
