// Regenerates Table 8: per-construct summary of the 53-program analysis —
// how many programs depend on each construct kind, how many unique
// dependencies exist, and how many are affected per mismatch class.
//
//   $ bench_table8 [--scale=1.0]
#include <cstdio>
#include <set>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

struct KindSummary {
  std::set<std::string> all;
  std::set<std::string> absent;
  std::set<std::string> changed;
  std::set<std::string> full;
  std::set<std::string> selective;
  std::set<std::string> transformed;
  std::set<std::string> duplicated;
  int programs = 0;
  int programs_affected[7] = {};  // per category
};

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Table 8: per-construct mismatch summary over 53 programs (scale %.2f)\n",
         study.options().scale);
  printf("paper reference: 126 unique funcs (29 absent, 31 changed, 11 F, 32 S, 28 T, 3 D),\n"
         "135 structs (31 absent), 342 fields (102 absent, 13 changed), 44 tracepoints\n"
         "(15 absent, 23 changed), 448 syscalls (204 absent)\n");
  printf("building the 21-image corpus...\n\n");

  obs::BenchReporter bench("table8");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  std::vector<BuildSpec> corpus = DependencyAnalysisCorpus();
  Result<Dataset> dataset = Error(ErrorCode::kInternal, "unbuilt");
  {
    auto stage = bench.Stage("build_dataset");
    stage.set_items(corpus.size());
    dataset = study.BuildDataset(corpus);
  }
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  KindSummary funcs, structs, fields, tracepts, syscalls;
  auto analyze_stage = bench.Stage("analyze_programs");
  for (const BpfObject& object : study.programs().objects) {
    auto report = Study::Analyze(*dataset, object);
    if (!report.ok()) {
      fprintf(stderr, "%s\n", report.error().ToString().c_str());
      return 1;
    }
    analyze_stage.add_items();
    bool has[5] = {};
    bool affected[5][7] = {};
    for (const ReportRow& row : report->rows) {
      KindSummary* summary = nullptr;
      int kind_index = 0;
      switch (row.kind) {
        case DepKind::kFunc:
          summary = &funcs;
          kind_index = 0;
          break;
        case DepKind::kStruct:
          summary = &structs;
          kind_index = 1;
          break;
        case DepKind::kField:
          summary = &fields;
          kind_index = 2;
          break;
        case DepKind::kTracepoint:
          summary = &tracepts;
          kind_index = 3;
          break;
        case DepKind::kSyscall:
          summary = &syscalls;
          kind_index = 4;
          break;
      }
      has[kind_index] = true;
      summary->all.insert(row.name);
      for (const auto& cell : row.cells) {
        for (MismatchKind kind : cell) {
          switch (kind) {
            case MismatchKind::kAbsent:
              summary->absent.insert(row.name);
              affected[kind_index][0] = true;
              break;
            case MismatchKind::kChanged:
              summary->changed.insert(row.name);
              affected[kind_index][1] = true;
              break;
            case MismatchKind::kFullInline:
              summary->full.insert(row.name);
              affected[kind_index][2] = true;
              break;
            case MismatchKind::kSelectiveInline:
              summary->selective.insert(row.name);
              affected[kind_index][3] = true;
              break;
            case MismatchKind::kTransformed:
              summary->transformed.insert(row.name);
              affected[kind_index][4] = true;
              break;
            case MismatchKind::kDuplicated:
              summary->duplicated.insert(row.name);
              affected[kind_index][5] = true;
              break;
            default:
              break;
          }
        }
      }
    }
    KindSummary* summaries[5] = {&funcs, &structs, &fields, &tracepts, &syscalls};
    for (int k = 0; k < 5; ++k) {
      summaries[k]->programs += has[k] ? 1 : 0;
      for (int c = 0; c < 7; ++c) {
        summaries[k]->programs_affected[c] += affected[k][c] ? 1 : 0;
      }
    }
  }

  TextTable table({"construct", "class", "# programs", "# uniq deps"});
  auto add = [&](const char* name, const KindSummary& s, bool funcs_only) {
    table.AddRow({name, "total", std::to_string(s.programs), std::to_string(s.all.size())});
    table.AddRow({"", "absent (O)", std::to_string(s.programs_affected[0]),
                  std::to_string(s.absent.size())});
    table.AddRow({"", "changed (C)", std::to_string(s.programs_affected[1]),
                  std::to_string(s.changed.size())});
    if (funcs_only) {
      table.AddRow({"", "full inline (F)", std::to_string(s.programs_affected[2]),
                    std::to_string(s.full.size())});
      table.AddRow({"", "selective (S)", std::to_string(s.programs_affected[3]),
                    std::to_string(s.selective.size())});
      table.AddRow({"", "transformed (T)", std::to_string(s.programs_affected[4]),
                    std::to_string(s.transformed.size())});
      table.AddRow({"", "duplicated (D)", std::to_string(s.programs_affected[5]),
                    std::to_string(s.duplicated.size())});
    }
    table.AddSeparator();
  };
  add("function", funcs, true);
  add("struct", structs, false);
  add("field", fields, false);
  add("tracepoint", tracepts, false);
  add("syscall", syscalls, false);
  printf("%s", table.Render().c_str());
  return 0;
}
