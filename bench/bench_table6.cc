// Regenerates Table 6: function duplication and name collisions across the
// LTS images, from the extracted function-status classifications.
//
//   $ bench_table6 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Table 6: function duplication and name collision (scale %.2f)\n",
         study.options().scale);
  printf("paper reference at v4.4 -> v6.8: unique global 17.2k->31.5k, unique static\n"
         "35.7k->60.2k, static duplication 4.0k->7.4k, static-static collision\n"
         "404->498, static-global collision 10->29\n\n");

  TextTable table({"class", "v4.4", "v4.15", "v5.4", "v5.15", "v6.8"});
  std::vector<std::vector<std::string>> rows(5);
  const char* kClasses[] = {"Unique Global", "Unique Static", "Static Duplication",
                            "Static-Static Collision", "Static-Global Collision"};
  for (int i = 0; i < 5; ++i) {
    rows[i].push_back(kClasses[i]);
  }

  obs::BenchReporter bench("table6");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  auto stage = bench.Stage("extract_lts");
  for (KernelVersion version : kLtsVersions) {
    auto surface = study.ExtractSurface(MakeBuild(version));
    if (!surface.ok()) {
      fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
      return 1;
    }
    stage.add_items();
    size_t counts[5] = {0, 0, 0, 0, 0};
    for (const auto& [name, entry] : surface->functions()) {
      (void)name;
      std::string klass = entry.status.CollisionClass();
      for (int i = 0; i < 5; ++i) {
        if (klass == kClasses[i]) {
          ++counts[i];
          break;
        }
      }
    }
    for (int i = 0; i < 5; ++i) {
      rows[i].push_back(i < 3 ? FormatCount(counts[i]) : std::to_string(counts[i]));
    }
  }
  for (auto& row : rows) {
    table.AddRow(std::move(row));
  }
  printf("%s", table.Render().c_str());
  return 0;
}
