// Regenerates Table 1 (summary of dependency mismatches, with measured
// maximum frequencies) and Table 2 (consequences -> implications).
//
//   $ bench_table1 [--scale=1.0]
#include <algorithm>
#include <cstdio>
#include <optional>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

size_t AttachableFuncs(const DependencySurface& surface) {
  size_t n = 0;
  for (const auto& [name, entry] : surface.functions()) {
    (void)name;
    n += entry.status.has_exact_symbol ? 1 : 0;
  }
  return n;
}

struct MaxRates {
  double func_add = 0, func_rm = 0, func_chg = 0;
  double struct_add = 0, struct_rm = 0, struct_chg = 0;
  double tp_add = 0, tp_rm = 0, tp_chg = 0;

  void Update(const DependencySurface& base, const SurfaceDiff& diff) {
    double f = static_cast<double>(AttachableFuncs(base));
    double s = static_cast<double>(base.structs().size());
    double t = static_cast<double>(base.tracepoints().size());
    func_add = std::max(func_add, diff.funcs.added.size() / f);
    func_rm = std::max(func_rm, diff.funcs.removed.size() / f);
    func_chg = std::max(func_chg, diff.funcs.changed.size() / f);
    struct_add = std::max(struct_add, diff.structs.added.size() / s);
    struct_rm = std::max(struct_rm, diff.structs.removed.size() / s);
    struct_chg = std::max(struct_chg, diff.structs.changed.size() / s);
    tp_add = std::max(tp_add, diff.tracepoints.added.size() / t);
    tp_rm = std::max(tp_rm, diff.tracepoints.removed.size() / t);
    tp_chg = std::max(tp_chg, diff.tracepoints.changed.size() / t);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  obs::BenchReporter bench("table1");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  printf("Table 1: summary of dependency mismatches (scale %.2f)\n", study.options().scale);
  printf("frequencies: source = max diff between consecutive LTS versions; configuration\n"
         "= max diff vs generic x86 v5.4; compilation = affected fraction at v5.4\n\n");

  // ---- Source evolution: max over LTS transitions.
  MaxRates source;
  {
    auto stage = bench.Stage("source_evolution");
    std::optional<DependencySurface> prev;
    for (KernelVersion version : kLtsVersions) {
      auto surface = study.ExtractSurface(MakeBuild(version));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      if (prev.has_value()) {
        source.Update(*prev, DiffSurfaces(*prev, *surface));
      }
      prev = surface.TakeValue();
    }
  }

  // ---- Configuration: max over the 8 non-generic builds.
  constexpr KernelVersion kV54{5, 4};
  Result<DependencySurface> baseline = Error(ErrorCode::kInternal, "unbuilt");
  MaxRates config;
  {
    auto stage = bench.Stage("configuration");
    baseline = study.ExtractSurface(MakeBuild(kV54));
    if (!baseline.ok()) {
      fprintf(stderr, "baseline: %s\n", baseline.error().ToString().c_str());
      return 1;
    }
    stage.add_items();
    std::vector<BuildSpec> others;
    for (Arch arch : {Arch::kArm64, Arch::kArm32, Arch::kPpc, Arch::kRiscv}) {
      others.push_back(MakeBuild(kV54, arch));
    }
    for (Flavor flavor : {Flavor::kAws, Flavor::kAzure, Flavor::kGcp, Flavor::kLowLatency}) {
      others.push_back(MakeBuild(kV54, Arch::kX86, flavor));
    }
    for (const BuildSpec& build : others) {
      auto surface = study.ExtractSurface(build);
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      config.Update(*baseline, DiffSurfaces(*baseline, *surface));
    }
  }

  // ---- Compilation effects at v5.4.
  size_t total = baseline->functions().size();
  size_t full = 0, selective = 0, transformed = 0, duplicated = 0, collided = 0;
  for (const auto& [name, entry] : baseline->functions()) {
    (void)name;
    full += entry.status.fully_inlined ? 1 : 0;
    selective += entry.status.selectively_inlined ? 1 : 0;
    transformed += entry.status.transformed ? 1 : 0;
    duplicated += entry.status.duplicated ? 1 : 0;
    collided += entry.status.collided ? 1 : 0;
  }
  double base = static_cast<double>(total);

  TextTable table({"origin", "type", "cause", "freq (measured)", "freq (paper)",
                   "consequence"});
  auto pct2 = [](double a, double b) {
    return FormatPercent(a) + "/" + FormatPercent(b);
  };
  table.AddRow({"source", "function", "addition/removal", pct2(source.func_add, source.func_rm),
                "24%/10%", "attachment error"});
  table.AddRow({"", "function", "change", FormatPercent(source.func_chg), "6%", "stray read"});
  table.AddRow({"", "struct", "addition/removal", pct2(source.struct_add, source.struct_rm),
                "24%/4%", "compilation error"});
  table.AddRow({"", "struct", "change", FormatPercent(source.struct_chg), "18%",
                "stray read or CE"});
  table.AddRow({"", "tracepoint", "addition/removal", pct2(source.tp_add, source.tp_rm),
                "39%/5%", "attachment error"});
  table.AddRow({"", "tracepoint", "change", FormatPercent(source.tp_chg), "16%",
                "stray read or CE"});
  table.AddSeparator();
  table.AddRow({"config", "function", "addition/removal", pct2(config.func_add, config.func_rm),
                "26%/25%", "attachment error"});
  table.AddRow({"", "function", "change", FormatPercent(config.func_chg), "0.3%",
                "stray read"});
  table.AddRow({"", "struct", "addition/removal",
                pct2(config.struct_add, config.struct_rm), "24%/22%", "compilation error"});
  table.AddRow({"", "struct", "change", FormatPercent(config.struct_chg), "1.8%",
                "stray read or CE"});
  table.AddRow({"", "tracepoint", "addition/removal", pct2(config.tp_add, config.tp_rm),
                "8%/34%", "attachment error"});
  table.AddRow({"", "syscall", "availability", "by arch", "by arch", "attachment error"});
  table.AddRow({"", "syscall", "traceability", "by arch", "by arch", "missing invocation"});
  table.AddRow({"", "register", "difference", "by arch", "by arch", "relocation error"});
  table.AddSeparator();
  table.AddRow({"compile", "function", "full inline", FormatPercent(full / base), "36%",
                "attachment error"});
  table.AddRow({"", "function", "selective inline", FormatPercent(selective / base), "11%",
                "missing invocation"});
  table.AddRow({"", "function", "transformation", FormatPercent(transformed / base), "16%",
                "attachment error"});
  table.AddRow({"", "function", "duplication", FormatPercent(duplicated / base), "12%",
                "missing invocation"});
  table.AddRow({"", "function", "name collision", FormatPercent(collided / base), "0.6%",
                "stray read"});
  printf("%s", table.Render().c_str());

  printf("\nTable 2: consequences and implications\n");
  TextTable t2({"consequence", "implication"});
  for (Consequence c :
       {Consequence::kCompilationError, Consequence::kRelocationError,
        Consequence::kAttachmentError, Consequence::kStrayRead,
        Consequence::kMissingInvocation}) {
    t2.AddRow({ConsequenceName(c), ImplicationName(ImplicationOf(c))});
  }
  printf("%s", t2.Render().c_str());
  return 0;
}
