// Regenerates Figure 4: the biotop (left) and readahead (right) dependency
// mismatch matrices across the 21 analysis images.
//
//   $ bench_fig4 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"

using namespace depsurf;

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  obs::BenchReporter bench("fig4");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  printf("Figure 4: dependency set analysis of biotop and readahead (scale %.2f)\n",
         study.options().scale);
  printf("building the 21-image corpus...\n\n");

  std::vector<BuildSpec> corpus = DependencyAnalysisCorpus();
  Result<Dataset> dataset = Error(ErrorCode::kInternal, "unbuilt");
  {
    auto build_stage = bench.Stage("build_dataset");
    build_stage.set_items(corpus.size());
    dataset = study.BuildDataset(corpus);
  }
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }
  {
    auto analyze_stage = bench.Stage("analyze");
    for (const char* program : {"biotop", "readahead"}) {
      auto report = study.Analyze(*dataset, program);
      if (!report.ok()) {
        fprintf(stderr, "%s: %s\n", program, report.error().ToString().c_str());
        return 1;
      }
      analyze_stage.add_items();
      printf("%s\n", report->RenderMatrix().c_str());
    }
  }
  printf(
      "paper reference (shape): biotop's accounting pair reads wrong data from v5.8\n"
      "(param removed, b5af37a) and fails to attach from v5.19 (static inline,\n"
      "be6bfe3); the block_io_* tracepoints only help v6.5+. readahead loses\n"
      "__do_page_cache_readahead to a rename at v5.11 and do_page_cache_ra to full\n"
      "inline at v5.18; __page_cache_alloc is duplicated + inlined on arm32/riscv\n"
      "(no CONFIG_NUMA).\n");
  return 0;
}
