#!/usr/bin/env bash
# Perf regression gate driver, registered with ctest as `perf-gate`. Runs
# the bench_perf suite twice at a small scale (base, then head), lints every
# BENCH_*.json it emits, and smoke-tests `depsurf perf compare`: identical
# inputs must pass, back-to-back runs must pass under a generous threshold
# (machine noise is not a regression), and a deliberately inflated stage
# must trip the gate with exit code 3. The --json output must round-trip
# through `metrics lint --kind=perf`.
#
# It then exercises the perf-intelligence loop end to end: `perf record`
# folds both sides into one NDJSON history store, `perf trend` analyzes it
# (text and JSON), `perf compare --history` gates with the store's adaptive
# per-stage floors, `perf diff` attributes the base-vs-head profile delta,
# and malformed threshold flags must fail loudly instead of parsing to 0.
set -eu

DEPSURF=${1:?usage: perf_gate.sh /path/to/depsurf /path/to/bench_perf}
BENCH=${2:?usage: perf_gate.sh /path/to/depsurf /path/to/bench_perf}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "perf_gate: FAIL: $*" >&2
  exit 1
}

# ---- run the suite twice: a base and a head measurement of the same code.
for side in base head; do
  mkdir -p "$side"
  DEPSURF_BENCH_DIR="$WORKDIR/$side" \
    "$BENCH" --scale=0.02 --benchmark_min_time=0.05s > "$side.log" 2>&1 \
    || fail "bench_perf ($side) exited $?"
done

# ---- every emitted trajectory file must lint as a bench report.
for report in base/BENCH_*.json head/BENCH_*.json; do
  [ -f "$report" ] || fail "bench_perf wrote no BENCH_*.json"
  "$DEPSURF" metrics lint "$report" --kind=bench || fail "$report invalid"
done

# ---- the report-mode build benchmark emits a self-profile next to the
# trajectories; it must lint as depsurf.profile.v1 and carry the
# critical-path section the profile analysis is for.
for profile in base/PROFILE_*.json head/PROFILE_*.json; do
  [ -f "$profile" ] || fail "bench_perf wrote no PROFILE_*.json"
  "$DEPSURF" metrics lint "$profile" --kind=profile || fail "$profile invalid"
  grep -q '"critical_path"' "$profile" || fail "$profile missing critical_path"
done

# ---- the analyzer bench is part of the gated suite: a static-analysis
# slowdown must trip `perf compare` like any extraction stage.
grep -q 'BM_AnalyzeCorpus' base/BENCH_perf.json \
  || fail "BENCH_perf.json is missing the BM_AnalyzeCorpus stage"

# ---- the remediation pipeline (plan + rewrite + re-encode) is gated the
# same way, and both analyzer stages are mirrored into BENCH_analyzer.json.
grep -q 'BM_FixCorpus' base/BENCH_perf.json \
  || fail "BENCH_perf.json is missing the BM_FixCorpus stage"
[ -f base/BENCH_analyzer.json ] || fail "bench_perf wrote no BENCH_analyzer.json"
grep -q 'BM_AnalyzeCorpus' base/BENCH_analyzer.json \
  || fail "BENCH_analyzer.json is missing the BM_AnalyzeCorpus stage"
grep -q 'BM_FixCorpus' base/BENCH_analyzer.json \
  || fail "BENCH_analyzer.json is missing the BM_FixCorpus stage"

# ---- the serve benchmarks are part of the gated suite too, and are
# mirrored into BENCH_serve.json for the ratio check below.
grep -q 'BM_ServeQueries' base/BENCH_perf.json \
  || fail "BENCH_perf.json is missing the BM_ServeQueries stages"
[ -f base/BENCH_serve.json ] || fail "bench_perf wrote no BENCH_serve.json"

# ---- dataset-as-a-service contract: answering a cached query must be at
# least 10x faster than the old load-the-whole-v1-dataset-per-query path.
awk '
  /"name": "BM_ServeQueriesCached"/   { cached = $0 }
  /"name": "BM_CheckV1ReparsePerQuery"/ { reparse = $0 }
  function per_item(line,   s, n) {
    match(line, /"seconds": [0-9.]+/); s = substr(line, RSTART + 11, RLENGTH - 11)
    match(line, /"items": [0-9]+/);    n = substr(line, RSTART + 9, RLENGTH - 9)
    return n > 0 ? s / n : -1
  }
  END {
    if (cached == "" || reparse == "") { print "missing serve stages"; exit 1 }
    c = per_item(cached); r = per_item(reparse)
    if (c <= 0 || r <= 0) { print "bad serve stage timings"; exit 1 }
    ratio = r / c
    printf "serve cached-hit speedup over v1 reparse: %.1fx\n", ratio
    if (ratio < 10) { print "cached serve is not 10x faster than v1 reparse"; exit 1 }
  }
' base/BENCH_serve.json || fail "serve cached-vs-reparse ratio check failed"

# ---- identical inputs never trip the gate.
"$DEPSURF" perf compare base/BENCH_perf.json base/BENCH_perf.json \
  || fail "identical inputs tripped the gate ($?)"

# ---- back-to-back runs of the same build pass under a generous threshold.
"$DEPSURF" perf compare base/BENCH_perf.json head/BENCH_perf.json \
  --max-regress=400% --noise-floor=0.010 > compare.txt \
  || fail "back-to-back runs tripped the 400% gate: $(cat compare.txt)"

# ---- the JSON form lints as a perf comparison.
"$DEPSURF" perf compare base/BENCH_perf.json head/BENCH_perf.json \
  --max-regress=400% --noise-floor=0.010 --json > compare.json \
  || fail "json compare exited $?"
"$DEPSURF" metrics lint compare.json --kind=perf || fail "compare.json invalid"

# ---- a 3x slowdown of a real stage must exit 3 (not a generic error).
cat > slow_base.json <<'EOF'
{"schema": "depsurf.bench_report.v1", "bench": "gate", "notes": {}, "stages": [
 {"name": "extract", "seconds": 1.0, "items": 5, "items_per_sec": 5.0,
  "bytes": 0, "bytes_per_sec": 0.0}]}
EOF
sed 's/"seconds": 1.0/"seconds": 3.0/' slow_base.json > slow_head.json
set +e
"$DEPSURF" perf compare slow_base.json slow_head.json > gate.txt
code=$?
set -e
[ "$code" -eq 3 ] || fail "inflated stage exited $code, want 3: $(cat gate.txt)"
grep -q "regressed" gate.txt || fail "gate output does not name the regression"

# ---- perf intelligence: record both sides into one history store, with
# each side's self-profile summary attached.
for side in base head; do
  "$DEPSURF" perf record "$side/BENCH_perf.json" \
      --history=history.ndjson --label="$side" \
      --profile="$side/PROFILE_build_reports_jobs1.json" \
    || fail "perf record ($side) exited $?"
done
[ "$(wc -l < history.ndjson)" -eq 2 ] || fail "history store does not hold 2 records"
"$DEPSURF" metrics lint history.ndjson --kind=history || fail "history.ndjson invalid"

# ---- trend analytics over the store, text and JSON forms.
"$DEPSURF" perf trend --history=history.ndjson > trend.txt \
  || fail "perf trend exited $?"
grep -q "comparable" trend.txt || fail "trend output missing its summary line"
"$DEPSURF" perf trend --history=history.ndjson --json > trend.json \
  || fail "perf trend --json exited $?"
"$DEPSURF" metrics lint trend.json --kind=trend || fail "trend.json invalid"

# ---- adaptive gate: with per-stage floors learned from the history, two
# back-to-back runs of the same build pass at the default 15% threshold
# (the floors cover the observed run-to-run spread by construction).
"$DEPSURF" perf compare base/BENCH_perf.json head/BENCH_perf.json \
    --history=history.ndjson > adaptive.txt \
  || fail "adaptive compare tripped the gate: $(cat adaptive.txt)"

# ---- differential profile attribution between the two sides' builds.
"$DEPSURF" perf diff base/PROFILE_build_reports_jobs1.json \
    head/PROFILE_build_reports_jobs1.json --json > profile_diff.json \
  || fail "perf diff exited $?"
"$DEPSURF" metrics lint profile_diff.json --kind=profile_diff \
  || fail "profile_diff.json invalid"
"$DEPSURF" perf diff base/PROFILE_build_reports_jobs1.json \
    head/PROFILE_build_reports_jobs1.json > profile_diff.txt \
  || fail "perf diff (text) exited $?"
grep -q "critical path" profile_diff.txt || fail "profile diff missing critical path"

# ---- malformed thresholds must exit 1 naming the flag, never silently
# parse to 0 and gate on pure noise.
for flag in --noise-floor=abc --max-regress=12%%; do
  set +e
  "$DEPSURF" perf compare base/BENCH_perf.json head/BENCH_perf.json \
    "$flag" > flag.txt 2>&1
  code=$?
  set -e
  [ "$code" -eq 1 ] || fail "$flag exited $code, want 1: $(cat flag.txt)"
  name=${flag#--}; name=${name%%=*}
  grep -q -- "$name" flag.txt || fail "error for $flag does not name the flag"
done

echo "perf_gate: PASS"
