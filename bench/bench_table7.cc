// Regenerates Table 7: dependency-set analysis of the 53 real-world eBPF
// programs across the 21-image corpus.
//
//   $ bench_table7 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

std::string N(int v) { return v == 0 ? "-" : std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Table 7: dependency sets and mismatches of 53 eBPF programs (scale %.2f)\n",
         study.options().scale);
  printf("columns per construct: total / absent(O) / changed(C) / full-inline(F) /\n"
         "selective(S) / transformed(T) / duplicated(D); '*' marks mismatch-free tools\n");
  printf("building the 21-image corpus...\n\n");

  obs::BenchReporter bench("table7");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  std::vector<BuildSpec> corpus = DependencyAnalysisCorpus();
  Result<Dataset> dataset = Error(ErrorCode::kInternal, "unbuilt");
  {
    auto stage = bench.Stage("build_dataset");
    stage.set_items(corpus.size());
    dataset = study.BuildDataset(corpus);
  }
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }

  TextTable table({"program", "fn", "O", "C", "F", "S", "T", "D", "st", "O", "fld", "O", "C",
                   "tp", "O", "C", "sys", "O"});
  int affected = 0;
  auto analyze_stage = bench.Stage("analyze_programs");
  for (const BpfObject& object : study.programs().objects) {
    auto report = Study::Analyze(*dataset, object);
    if (!report.ok()) {
      fprintf(stderr, "%s: %s\n", object.name.c_str(), report.error().ToString().c_str());
      return 1;
    }
    analyze_stage.add_items();
    bool any = report->AnyMismatch();
    affected += any ? 1 : 0;
    table.AddRow({(any ? "" : "*") + object.name, N(report->funcs.total),
                  N(report->funcs.absent), N(report->funcs.changed),
                  N(report->funcs.full_inline), N(report->funcs.selective),
                  N(report->funcs.transformed), N(report->funcs.duplicated),
                  N(report->structs.total), N(report->structs.absent),
                  N(report->fields.total), N(report->fields.absent),
                  N(report->fields.changed), N(report->tracepoints.total),
                  N(report->tracepoints.absent), N(report->tracepoints.changed),
                  N(report->syscalls.total), N(report->syscalls.absent)});
  }
  printf("%s", table.Render().c_str());
  printf("\naffected programs: %d / 53 (%.0f%%; paper: 83%%)\n", affected,
         100.0 * affected / 53.0);
  return 0;
}
