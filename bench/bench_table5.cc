// Regenerates Table 5: configuration differences at v5.4 relative to the
// generic x86 kernel — four architectures and four flavors.
//
//   $ bench_table5 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

size_t AttachableFuncs(const DependencySurface& surface) {
  size_t n = 0;
  for (const auto& [name, entry] : surface.functions()) {
    (void)name;
    if (entry.status.has_exact_symbol) {
      ++n;
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Table 5: configuration differences vs generic x86 at v5.4 (scale %.2f)\n",
         study.options().scale);
  printf("paper reference: arm64 +9.2k/-7.9k funcs; arm32 +12.6k/-11.8k; ppc +5.4k/-10.6k;\n"
         "riscv +2.1k/-13.5k; aws -1.8k; azure -3.5k; gcp -319; lowlat -41\n\n");

  obs::BenchReporter bench("table5");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  auto stage = bench.Stage("extract_and_compare");
  constexpr KernelVersion kV54{5, 4};
  auto baseline = study.ExtractSurface(MakeBuild(kV54));
  if (!baseline.ok()) {
    fprintf(stderr, "baseline: %s\n", baseline.error().ToString().c_str());
    return 1;
  }
  stage.add_items();

  TextTable table({"build", "config", "#func", "+", "-", "d", "#struct", "+", "-", "d",
                   "#tracept", "+", "-", "#syscall", "+", "-", "reg d", "compat32"});
  auto add_row = [&](const char* label, const DependencySurface& surface, bool is_baseline) {
    SurfaceDiff diff = is_baseline ? SurfaceDiff{} : DiffSurfaces(*baseline, surface);
    Dataset pair;
    pair.AddImage("base", *baseline);
    pair.AddImage("other", surface);
    bool reg_diff = !pair.CheckRegisters()[1].empty();
    auto dash_or = [&](size_t n) { return is_baseline ? std::string("-") : FormatCount(n); };
    table.AddRow({label, FormatCount(surface.meta().config_options),
                  FormatCount(AttachableFuncs(surface)), dash_or(diff.funcs.added.size()),
                  dash_or(diff.funcs.removed.size()), dash_or(diff.funcs.changed.size()),
                  FormatCount(surface.structs().size()), dash_or(diff.structs.added.size()),
                  dash_or(diff.structs.removed.size()), dash_or(diff.structs.changed.size()),
                  std::to_string(surface.tracepoints().size()),
                  dash_or(diff.tracepoints.added.size()),
                  dash_or(diff.tracepoints.removed.size()),
                  std::to_string(surface.syscalls().size()),
                  dash_or(diff.syscalls.added.size()), dash_or(diff.syscalls.removed.size()),
                  is_baseline ? "-" : (reg_diff ? "Yes" : "-"),
                  surface.meta().compat_syscalls_traceable ? "traceable" : "blind"});
  };

  add_row("x86-generic", *baseline, true);
  for (Arch arch : {Arch::kArm64, Arch::kArm32, Arch::kPpc, Arch::kRiscv}) {
    auto surface = study.ExtractSurface(MakeBuild(kV54, arch));
    if (!surface.ok()) {
      fprintf(stderr, "%s: %s\n", ArchName(arch), surface.error().ToString().c_str());
      return 1;
    }
    stage.add_items();
    add_row(ArchName(arch), *surface, false);
  }
  for (Flavor flavor : {Flavor::kAws, Flavor::kAzure, Flavor::kGcp, Flavor::kLowLatency}) {
    auto surface = study.ExtractSurface(MakeBuild(kV54, Arch::kX86, flavor));
    if (!surface.ok()) {
      fprintf(stderr, "%s: %s\n", FlavorName(flavor), surface.error().ToString().c_str());
      return 1;
    }
    stage.add_items();
    add_row(FlavorName(flavor), *surface, false);
  }
  printf("%s", table.Render().c_str());
  printf("\n'compat32 blind': 32-bit compat syscalls exist but cannot be traced on this\n"
         "architecture (x86/arm64/riscv) -- the monitoring blind spot of the paper.\n");
  return 0;
}
