// Regenerates Table 3: kernel source-code differences across the 17 study
// versions (and the LTS block), measured by diffing extracted dependency
// surfaces pairwise.
//
//   $ bench_table3 [--scale=1.0] [--seed=N]
#include <cstdio>
#include <optional>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

struct Row {
  std::string version;
  size_t funcs = 0;
  size_t structs = 0;
  size_t tracepts = 0;
  // Percentages relative to the *older* surface, paper-style.
  double f_add = -1, f_rm = -1, f_chg = -1;
  double s_add = -1, s_rm = -1, s_chg = -1;
  double t_add = -1, t_rm = -1, t_chg = -1;
};

size_t AttachableFuncs(const DependencySurface& surface) {
  size_t n = 0;
  for (const auto& [name, entry] : surface.functions()) {
    (void)name;
    if (entry.status.has_exact_symbol) {
      ++n;
    }
  }
  return n;
}

Row MeasureRow(const DependencySurface& surface, const DependencySurface* prev) {
  Row row;
  row.version = StrFormat("v%d.%d", surface.meta().version_major, surface.meta().version_minor);
  row.funcs = AttachableFuncs(surface);
  row.structs = surface.structs().size();
  row.tracepts = surface.tracepoints().size();
  if (prev != nullptr) {
    SurfaceDiff diff = DiffSurfaces(*prev, surface);
    double f_base = static_cast<double>(AttachableFuncs(*prev));
    double s_base = static_cast<double>(prev->structs().size());
    double t_base = static_cast<double>(prev->tracepoints().size());
    row.f_add = diff.funcs.added.size() / f_base;
    row.f_rm = diff.funcs.removed.size() / f_base;
    row.f_chg = diff.funcs.changed.size() / f_base;
    row.s_add = diff.structs.added.size() / s_base;
    row.s_rm = diff.structs.removed.size() / s_base;
    row.s_chg = diff.structs.changed.size() / s_base;
    row.t_add = diff.tracepoints.added.size() / t_base;
    row.t_rm = diff.tracepoints.removed.size() / t_base;
    row.t_chg = diff.tracepoints.changed.size() / t_base;
  }
  return row;
}

std::string Pct(double v) { return v < 0 ? "" : FormatPercent(v); }

void PrintBlock(const char* title, const std::vector<Row>& rows) {
  printf("\n%s\n", title);
  TextTable table({"ver", "#func", "+%", "-%", "d%", "#struct", "+%", "-%", "d%", "#tracept",
                   "+%", "-%", "d%"});
  for (const Row& row : rows) {
    table.AddRow({row.version, FormatCount(row.funcs), Pct(row.f_add), Pct(row.f_rm),
                  Pct(row.f_chg), FormatCount(row.structs), Pct(row.s_add), Pct(row.s_rm),
                  Pct(row.s_chg), FormatCount(row.tracepts), Pct(row.t_add), Pct(row.t_rm),
                  Pct(row.t_chg)});
  }
  printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  obs::BenchReporter bench("table3");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  printf("Table 3: kernel source code differences (scale %.2f)\n", study.options().scale);
  printf("paper reference, LTS block: funcs 36k->62k with +21..24%% / -7..10%% / d4..6%%;\n"
         "structs 6.2k->10.5k with +16..24%% / -4..6%% / d15..18%%; tracepoints 502->932\n"
         "with +14..39%% / -3..5%% / d8..16%%\n");

  auto run_series = [&](const char* stage_name, const std::vector<KernelVersion>& versions) {
    auto stage = bench.Stage(stage_name);
    std::vector<Row> rows;
    std::optional<DependencySurface> prev;
    for (KernelVersion version : versions) {
      auto surface = study.ExtractSurface(MakeBuild(version));
      if (!surface.ok()) {
        fprintf(stderr, "extract %s: %s\n", version.Tag().c_str(),
                surface.error().ToString().c_str());
        exit(1);
      }
      stage.add_items();
      rows.push_back(MeasureRow(*surface, prev.has_value() ? &*prev : nullptr));
      prev = surface.TakeValue();
    }
    return rows;
  };

  std::vector<KernelVersion> lts(kLtsVersions.begin(), kLtsVersions.end());
  PrintBlock("-- LTS versions (Ubuntu 16.04 .. 24.04) --", run_series("lts_series", lts));

  std::vector<KernelVersion> all(kStudyVersions.begin(), kStudyVersions.end());
  PrintBlock("-- all 17 versions --", run_series("all_versions", all));

  // §4.1 "special kernel functions": LSM hooks (~150, ~9% added / 2%
  // removed per LTS) and kfuncs (~100 by v6.8; removed/renamed but never
  // re-typed).
  printf("\n-- special functions (LSM hooks, kfuncs) --\n");
  TextTable special({"ver", "#lsm hooks", "#kfuncs"});
  auto special_stage = bench.Stage("special_functions");
  for (KernelVersion version : kLtsVersions) {
    auto surface = study.ExtractSurface(MakeBuild(version));
    if (!surface.ok()) {
      fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
      return 1;
    }
    special_stage.add_items();
    size_t lsm = 0;
    for (const auto& [name, entry] : surface->functions()) {
      (void)entry;
      lsm += DependencySurface::IsLsmHook(name) ? 1 : 0;
    }
    special.AddRow({version.Tag(), std::to_string(lsm),
                    std::to_string(surface->kfuncs().size())});
  }
  printf("%s", special.Render().c_str());
  return 0;
}
