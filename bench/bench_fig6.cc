// Regenerates Figure 6: functions transformed by compiler optimizations
// (constprop / isra / part / cold suffixes), per version and architecture.
//
//   $ bench_fig6 [--scale=1.0]
#include <cstdio>

#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

void MeasureRow(TextTable& table, const std::string& label, int gcc,
                const DependencySurface& surface) {
  size_t with_symbol = 0;
  size_t isra = 0;
  size_t constprop = 0;
  size_t part = 0;
  size_t cold = 0;
  for (const auto& [name, entry] : surface.functions()) {
    (void)name;
    if (entry.symbols.empty()) {
      continue;
    }
    ++with_symbol;
    if (!entry.status.transformed) {
      continue;
    }
    const std::string& suffix = entry.status.transform_suffix;
    if (suffix.find(".isra") == 0) {
      ++isra;
    } else if (suffix.find(".constprop") == 0) {
      ++constprop;
    } else if (suffix.find(".part") == 0) {
      ++part;
    } else if (suffix.find(".cold") == 0) {
      ++cold;
    }
  }
  double base = static_cast<double>(with_symbol);
  size_t total = isra + constprop + part + cold;
  table.AddRow({label, StrFormat("gcc%d", gcc), FormatCount(with_symbol),
                FormatPercent(isra / base), FormatPercent(constprop / base),
                FormatPercent(part / base), FormatPercent(cold / base),
                FormatPercent(total / base)});
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv));
  printf("Figure 6: function transformations by the compiler (scale %.2f)\n",
         study.options().scale);
  printf("paper reference: up to 16%% of symbol-table functions transformed; '.cold'\n"
         "appears with GCC >= 8; arm32 has no '.isra' (disabled, a077224)\n\n");

  obs::BenchReporter bench("fig6");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  TextTable table({"image", "gcc", "#syms", "isra", "constprop", "part", "cold", "total"});
  {
    auto stage = bench.Stage("extract_versions");
    for (KernelVersion version : kStudyVersions) {
      auto surface = study.ExtractSurface(MakeBuild(version));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      MeasureRow(table, version.Tag(), GccMajorFor(version), *surface);
    }
  }
  table.AddSeparator();
  constexpr KernelVersion kV54{5, 4};
  {
    auto stage = bench.Stage("extract_arches");
    for (Arch arch : {Arch::kArm64, Arch::kArm32, Arch::kPpc, Arch::kRiscv}) {
      auto surface = study.ExtractSurface(MakeBuild(kV54, arch));
      if (!surface.ok()) {
        fprintf(stderr, "extract: %s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      MeasureRow(table, StrFormat("v5.4-%s", ArchName(arch)), GccMajorFor(kV54), *surface);
    }
  }
  printf("%s", table.Render().c_str());
  return 0;
}
