// Ablations over the design choices DESIGN.md calls out:
//   A. Inline-threshold sweep: how the attachable surface and biotop-style
//      breakage respond to the compiler's full-inline aggressiveness.
//   B. CO-RE guards: unguarded vs bpf_core_field_exists-guarded field
//      access (explicit errors vs clean degradation).
//   C. Selective-inline detection on/off: how many silently-incomplete
//      programs a naive symbol-table-only analysis would miss.
//
//   $ bench_ablation [--scale=0.25]
#include <cstdio>

#include "src/bpf/bpf_builder.h"
#include "src/obs/bench_report.h"
#include "src/study/study.h"
#include "src/util/str_util.h"
#include "src/util/table.h"

using namespace depsurf;

namespace {

Result<DependencySurface> SurfaceWithRates(const Study& study, const BuildSpec& build,
                                           const CompilationRates& rates) {
  DEPSURF_ASSIGN_OR_RETURN(kernel, study.model().Configure(build));
  DEPSURF_ASSIGN_OR_RETURN(bytes,
                           BuildKernelImage(CompileKernel(study.options().seed,
                                                          std::move(kernel), rates)));
  return DependencySurface::Extract(std::move(bytes));
}

}  // namespace

int main(int argc, char** argv) {
  Study study(StudyOptions::FromArgs(argc, argv, /*default_scale=*/0.25));
  obs::BenchReporter bench("ablation");
  bench.AddNote("scale", StrFormat("%.2f", study.options().scale));
  printf("ablations (scale %.2f)\n\n", study.options().scale);
  constexpr KernelVersion kV54{5, 4};

  // ---- A: inline-threshold sweep.
  printf("A. inline aggressiveness sweep (full_inline_static rate):\n");
  TextTable sweep({"full-inline rate", "#funcs (debug info)", "attachable", "fully inlined",
                   "selectively inlined"});
  {
    auto stage = bench.Stage("inline_sweep");
    for (double rate : {0.0, 0.25, 0.52, 0.75, 1.0}) {
      CompilationRates rates;  // defaults
      rates.full_inline_static = rate;
      auto surface = SurfaceWithRates(study, MakeBuild(kV54), rates);
      if (!surface.ok()) {
        fprintf(stderr, "%s\n", surface.error().ToString().c_str());
        return 1;
      }
      stage.add_items();
      size_t total = surface->functions().size();
      size_t attachable = 0, full = 0, selective = 0;
      for (const auto& [name, entry] : surface->functions()) {
        (void)name;
        attachable += entry.status.has_exact_symbol ? 1 : 0;
        full += entry.status.fully_inlined ? 1 : 0;
        selective += entry.status.selectively_inlined ? 1 : 0;
      }
      sweep.AddRow({StrFormat("%.2f", rate), FormatCount(total), FormatCount(attachable),
                    FormatPercent(static_cast<double>(full) / total),
                    FormatPercent(static_cast<double>(selective) / total)});
    }
  }
  printf("%s\n", sweep.Render().c_str());
  printf("takeaway: every extra point of inline aggressiveness directly shrinks the\n"
         "attachable surface; kprobe-based tools degrade with the compiler's mood.\n\n");

  // ---- B: guarded vs unguarded field access.
  printf("B. CO-RE field-exists guards (request_queue::disk across the x86 series):\n");
  std::vector<BuildSpec> series = X86GenericSeries();
  Result<Dataset> dataset = Error(ErrorCode::kInternal, "unbuilt");
  {
    auto stage = bench.Stage("build_dataset");
    stage.set_items(series.size());
    dataset = study.BuildDataset(series);
  }
  if (!dataset.ok()) {
    fprintf(stderr, "dataset: %s\n", dataset.error().ToString().c_str());
    return 1;
  }
  for (bool guarded : {false, true}) {
    BpfObjectBuilder builder(guarded ? "probe_guarded" : "probe_unguarded");
    builder.AttachKprobe("blk_mq_start_request");
    Status ok = guarded
                    ? builder.CheckFieldExists("request_queue", "disk", "struct gendisk *")
                    : builder.AccessField("request_queue", "disk", "struct gendisk *");
    if (!ok.ok()) {
      fprintf(stderr, "builder: %s\n", ok.ToString().c_str());
      return 1;
    }
    auto report = Study::Analyze(*dataset, builder.Build());
    if (!report.ok()) {
      fprintf(stderr, "%s\n", report.error().ToString().c_str());
      return 1;
    }
    int broken_images = 0;
    for (const ReportRow& row : report->rows) {
      if (row.kind != DepKind::kField) {
        continue;
      }
      for (const auto& cell : row.cells) {
        broken_images += cell.count(MismatchKind::kAbsent) != 0 ? 1 : 0;
      }
    }
    printf("  %-16s images with a field mismatch: %2d / 17  (worst implication: %s)\n",
           guarded ? "guarded:" : "unguarded:", broken_images,
           ImplicationName(report->WorstImplication()));
  }
  printf("takeaway: the guard turns relocation failures on 12 old kernels into a clean\n"
         "runtime fallback -- but only if the developer knew to add it (DepSurf's job).\n\n");

  // ---- C: value of selective-inline detection.
  printf("C. symbol-table-only analysis vs DWARF call-site analysis:\n");
  int with_sites = 0;
  int symbol_only = 0;
  auto analyze_stage = bench.Stage("analyze_programs");
  for (const BpfObject& object : study.programs().objects) {
    auto report = Study::Analyze(*dataset, object);
    if (!report.ok()) {
      continue;
    }
    analyze_stage.add_items();
    bool selective_only = report->funcs.selective > 0 && report->funcs.absent == 0 &&
                          report->funcs.changed == 0 && report->funcs.full_inline == 0 &&
                          report->funcs.transformed == 0 && report->structs.absent == 0 &&
                          report->fields.absent == 0 && report->fields.changed == 0 &&
                          report->tracepoints.absent == 0 && report->tracepoints.changed == 0 &&
                          report->syscalls.absent == 0;
    with_sites += report->AnyMismatch() ? 1 : 0;
    symbol_only += (report->AnyMismatch() && !selective_only) ? 1 : 0;
  }
  printf("  programs flagged with call-site analysis:    %d / 53\n", with_sites);
  printf("  programs flagged by symbol table alone:      %d / 53\n", symbol_only);
  printf("  silently-incomplete tools missed without it: %d\n", with_sites - symbol_only);
  printf("takeaway: selective inline is invisible to symbol-table checks; only the\n"
         "DWARF inline-instance analysis exposes those incomplete-result bugs.\n");
  return 0;
}
